// Package telemetry models the fleet telemetry cloud of the paper's §V
// — the CARIAD-style backend whose breach the paper analyzes: vehicles
// reporting geolocation and diagnostics into a cloud store fronted by a
// web API, an IAM token service, and the misconfiguration classes that
// formed the kill chain of Fig. 8 (exposed heap-dump endpoint,
// credentials in process memory, an over-privileged master key), plus
// the hardening switches that break each link.
//
// Exercised by experiments fig8 and exp-stealth.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"autosec/internal/sim"
)

// Record is one telemetry data point.
type Record struct {
	VIN       string
	OwnerName string
	Email     string
	Lat, Lon  float64
	Timestamp int64
}

// Config holds the deployment's security posture. Every field models a
// real class of defect (true = vulnerable) or defence.
type Config struct {
	// HeapDumpExposed leaves the framework's debug heap-dump endpoint
	// reachable in production.
	HeapDumpExposed bool
	// SecretsInMemory keeps long-lived cloud credentials in the
	// application heap (no scrubbing / external secret store).
	SecretsInMemory bool
	// MasterKeyOverPrivileged lets the telemetry app's key mint access
	// tokens for *any* user (no least-privilege scoping).
	MasterKeyOverPrivileged bool
	// EnumerationDefended rate-limits and uniformly answers unknown
	// paths, defeating directory brute-forcing.
	EnumerationDefended bool
	// CoarseLocation stores geolocation truncated to ~1 km (data
	// minimization); precise data never exists to steal.
	CoarseLocation bool
}

// WorstCase returns the configuration matching the incident: everything
// vulnerable.
func WorstCase() Config {
	return Config{HeapDumpExposed: true, SecretsInMemory: true, MasterKeyOverPrivileged: true}
}

// Hardened returns the fully defended configuration.
func Hardened() Config {
	return Config{EnumerationDefended: true, CoarseLocation: true}
}

// Cloud is the telemetry backend.
type Cloud struct {
	cfg     Config
	records map[string][]Record // by VIN
	vins    []string
	// masterKey is the application's IAM credential.
	masterKey string
	// issued tracks minted tokens: token → VIN scope ("" = all).
	issued map[string]string
	paths  []string

	// monitoring & audit state (see monitor.go).
	monitor *Monitor
	events  []AccessEvent
	step    int
}

// NewCloud builds a backend with a synthetic fleet of the given size.
// Each vehicle gets a months-long geolocation history (scaled to
// pointsPerVehicle).
func NewCloud(cfg Config, vehicles, pointsPerVehicle int, rng *sim.RNG) *Cloud {
	c := &Cloud{
		cfg:       cfg,
		records:   make(map[string][]Record, vehicles),
		masterKey: "AKIA-MASTER-0xFLEET",
		issued:    make(map[string]string),
		paths: []string{
			"/api/v1/telemetry", "/api/v1/vehicles", "/api/v1/health",
			"/actuator", "/actuator/env", "/actuator/heapdump",
		},
	}
	for i := 0; i < vehicles; i++ {
		vin := fmt.Sprintf("WVWZZZ%07d", i)
		c.vins = append(c.vins, vin)
		lat := 48.0 + rng.Float64()*4 // somewhere in central Europe
		lon := 8.0 + rng.Float64()*6
		recs := make([]Record, 0, pointsPerVehicle)
		for p := 0; p < pointsPerVehicle; p++ {
			la, lo := lat+rng.NormFloat64()*0.05, lon+rng.NormFloat64()*0.05
			if cfg.CoarseLocation {
				la = math.Round(la*100) / 100 // ~1 km grid
				lo = math.Round(lo*100) / 100
			}
			recs = append(recs, Record{
				VIN:       vin,
				OwnerName: fmt.Sprintf("owner-%d", i),
				Email:     fmt.Sprintf("owner-%d@example.com", i),
				Lat:       la, Lon: lo,
				Timestamp: int64(p) * 3600,
			})
		}
		c.records[vin] = recs
	}
	return c
}

// Config exposes the posture (read-only copy).
func (c *Cloud) Config() Config { return c.cfg }

// Fleet returns the number of vehicles.
func (c *Cloud) Fleet() int { return len(c.vins) }

// VINs returns the fleet's vehicle identifiers. In the breach scenario
// the attacker obtains this list from the same heap dump that leaked
// the credentials (session objects reference active VINs).
func (c *Cloud) VINs() []string { return append([]string(nil), c.vins...) }

// TotalRecords returns the total stored data points.
func (c *Cloud) TotalRecords() int {
	n := 0
	for _, r := range c.records {
		n += len(r)
	}
	return n
}

// --- the web surface the attacker probes ---

// Probe answers an unauthenticated HTTP-style request for a path. It
// returns a status code and a body snippet.
func (c *Cloud) Probe(path string) (int, string) {
	known := false
	for _, p := range c.paths {
		if p == path {
			known = true
			break
		}
	}
	if !known {
		return 404, ""
	}
	switch {
	case path == "/actuator/heapdump":
		if !c.cfg.HeapDumpExposed {
			return 403, "forbidden"
		}
		return 200, c.heapDump()
	case strings.HasPrefix(path, "/actuator"):
		if !c.cfg.HeapDumpExposed {
			return 403, "forbidden"
		}
		return 200, "spring-boot actuator index"
	case strings.HasPrefix(path, "/api/"):
		return 401, "token required"
	}
	return 404, ""
}

// EnumeratePaths models a gobuster run with the given wordlist budget:
// it returns the discoverable paths. With enumeration defences on, the
// scan learns nothing beyond the public API root.
func (c *Cloud) EnumeratePaths(budget int) []string {
	if c.cfg.EnumerationDefended {
		return []string{"/api/v1/telemetry"}
	}
	// A realistic wordlist finds the framework paths quickly; the
	// budget caps how many are revealed.
	out := append([]string(nil), c.paths...)
	sort.Strings(out)
	if budget < len(out) {
		out = out[:budget]
	}
	return out
}

// heapDump renders the process memory. If secrets live in memory, the
// IAM master key is in there.
func (c *Cloud) heapDump() string {
	var b strings.Builder
	b.WriteString("JAVA HPROF 1.0.2\n...thousands of objects...\n")
	b.WriteString("com.fleet.telemetry.Session{user=svc-telemetry}\n")
	if c.cfg.SecretsInMemory {
		fmt.Fprintf(&b, "com.fleet.iam.Credentials{accessKey=%q}\n", c.masterKey)
	}
	b.WriteString("...more objects...\n")
	return b.String()
}

// MintToken exchanges an IAM credential for an access token scoped to a
// VIN ("" requests fleet-wide scope). Fleet-wide scope requires the
// master key to be over-privileged.
func (c *Cloud) MintToken(iamKey, scopeVIN string) (string, error) {
	if iamKey != c.masterKey {
		return "", fmt.Errorf("telemetry: invalid IAM credential")
	}
	if scopeVIN == "" && !c.cfg.MasterKeyOverPrivileged {
		return "", fmt.Errorf("telemetry: key not authorized for fleet-wide scope")
	}
	if scopeVIN != "" {
		if _, ok := c.records[scopeVIN]; !ok {
			return "", fmt.Errorf("telemetry: unknown VIN %s", scopeVIN)
		}
	}
	tok := fmt.Sprintf("tok-%d", len(c.issued)+1)
	c.issued[tok] = scopeVIN
	c.recordEvent(AccessEvent{Kind: "mint", FleetScope: scopeVIN == ""})
	return tok, nil
}

// Fetch returns records accessible under a token. Fleet-scope tokens
// stream everything.
func (c *Cloud) Fetch(token string) ([]Record, error) {
	scope, ok := c.issued[token]
	if !ok {
		return nil, fmt.Errorf("telemetry: invalid token")
	}
	if scope != "" {
		out := append([]Record(nil), c.records[scope]...)
		c.recordEvent(AccessEvent{Kind: "fetch", Records: len(out)})
		return out, nil
	}
	var out []Record
	for _, vin := range c.vins {
		out = append(out, c.records[vin]...)
	}
	c.recordEvent(AccessEvent{Kind: "fetch", FleetScope: true, Records: len(out)})
	return out, nil
}

// LocationPrecisionM estimates the positional precision of a record set
// in metres: coarse storage yields ~1 km, precise storage ~10 m. It
// inspects the decimal structure of stored coordinates.
func LocationPrecisionM(recs []Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	coarse := true
	for _, r := range recs {
		if math.Abs(r.Lat*100-math.Round(r.Lat*100)) > 1e-9 {
			coarse = false
			break
		}
	}
	if coarse {
		return 1000
	}
	return 10
}
