package telemetry

import (
	"fmt"
)

// Monitor is the cloud's security monitoring: the §V-B point is that a
// breach only becomes an "incident" if somebody notices. The monitor
// watches the IAM and data-plane event stream with the alarms a
// reasonable deployment would have — and the stealth experiment shows
// how an attacker routes around exactly these.
type Monitor struct {
	// FleetScopeAlarm fires when a fleet-wide token is minted (the
	// master-key misuse signature).
	FleetScopeAlarm bool
	// MintRateAlarm fires when more than MintRateLimit tokens are
	// minted within one MintRateWindow of logical event time.
	MintRateAlarm bool
	MintRateLimit int
	// VolumeAlarm fires when a single token fetches more than
	// VolumeLimit records.
	VolumeAlarm bool
	VolumeLimit int

	alerts []string
}

// DefaultMonitor enables all alarms with deployment-plausible limits.
func DefaultMonitor() *Monitor {
	return &Monitor{
		FleetScopeAlarm: true,
		MintRateAlarm:   true, MintRateLimit: 20,
		VolumeAlarm: true, VolumeLimit: 500,
	}
}

// Alerts returns everything raised so far.
func (m *Monitor) Alerts() []string { return m.alerts }

// Detected reports whether any alarm fired.
func (m *Monitor) Detected() bool { return len(m.alerts) > 0 }

func (m *Monitor) raise(format string, args ...any) {
	m.alerts = append(m.alerts, fmt.Sprintf(format, args...))
}

// AccessEvent is one data-plane or IAM event.
type AccessEvent struct {
	// Step is a logical timestamp (the cloud's own event counter).
	Step int
	// Kind is "mint" or "fetch".
	Kind string
	// FleetScope marks fleet-wide tokens.
	FleetScope bool
	// Records is the fetch size.
	Records int
}

// observer wiring on the Cloud ---------------------------------------

// AttachMonitor installs a monitor; subsequent MintToken/Fetch calls
// feed it.
func (c *Cloud) AttachMonitor(m *Monitor) { c.monitor = m }

// Monitor returns the installed monitor (nil if none).
func (c *Cloud) Monitor() *Monitor { return c.monitor }

// recordEvent feeds the monitor (no-op without one).
func (c *Cloud) recordEvent(ev AccessEvent) {
	c.step++
	ev.Step = c.step
	c.events = append(c.events, ev)
	m := c.monitor
	if m == nil {
		return
	}
	switch ev.Kind {
	case "mint":
		if m.FleetScopeAlarm && ev.FleetScope {
			m.raise("fleet-scope token minted at step %d", ev.Step)
		}
		if m.MintRateAlarm {
			count := 0
			for _, e := range c.events {
				if e.Kind == "mint" && ev.Step-e.Step < mintRateWindow {
					count++
				}
			}
			if count > m.MintRateLimit {
				m.raise("token mint rate %d exceeds %d at step %d", count, m.MintRateLimit, ev.Step)
			}
		}
	case "fetch":
		if m.VolumeAlarm && ev.Records > m.VolumeLimit {
			m.raise("bulk fetch of %d records at step %d", ev.Records, ev.Step)
		}
	}
}

// mintRateWindow is the logical-step span of the mint-rate alarm.
const mintRateWindow = 100

// Events exposes the audit log (forensics; §V's whistleblower moment is
// finding these after the fact).
func (c *Cloud) Events() []AccessEvent { return c.events }

// AdvanceTime moves the logical clock forward without activity — the
// patient attacker's tool: spreading mints beyond the rate window.
func (c *Cloud) AdvanceTime(steps int) { c.step += steps }
