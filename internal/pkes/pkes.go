// Package pkes models the Passive Keyless Entry and Start system of the
// paper's §II-A: a vehicle that unlocks when its key fob proves both
// *identity* (a data-layer challenge–response) and *proximity*. The
// proximity proof is where the designs differ:
//
//   - LegacyRSSI: proximity inferred from low-frequency signal presence
//     and strength — defeated by a simple two-sided relay (ref [1]).
//   - UWBSecureHRP: proximity from secure time-of-flight ranging with an
//     integrity-checked HRP receiver (refs [4], [8]).
//   - UWBLRPBounding: proximity from rapid-bit-exchange distance
//     bounding with LRP distance commitment (refs [5], [6]).
//
// The identity layer is real crypto (AES-CMAC challenge–response); the
// point the package demonstrates is that it survives a relay untouched,
// which is exactly why physical-layer security is needed.
//
// No registry experiment drives this package; the §II-A relay/replay
// properties are verified by its own test suite (fig2 covers the UWB
// ranging layer beneath it).
package pkes

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/ranging"
	"autosec/internal/sim"
	"autosec/internal/uwb"
	"autosec/internal/vcrypto"
)

// System selects the proximity-proof design.
type System int

const (
	// LegacyRSSI is the pre-UWB design: LF wake-up + RSSI proximity.
	LegacyRSSI System = iota
	// UWBSecureHRP uses HRP secure ranging (STS + integrity checks).
	UWBSecureHRP
	// UWBLRPBounding uses LRP distance bounding with commitment.
	UWBLRPBounding
)

func (s System) String() string {
	switch s {
	case LegacyRSSI:
		return "legacy-rssi"
	case UWBSecureHRP:
		return "uwb-hrp-secure"
	case UWBLRPBounding:
		return "uwb-lrp-bounding"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Relay models the two-sided relay rig used in real PKES thefts: one
// device near the vehicle, one near the fob, a link in between. It
// forwards all data transparently (so challenge–response succeeds) and
// adds physical path delay.
type Relay struct {
	// LinkDelayNs is the added one-way delay of the relay link
	// (amplification electronics + cable/RF hop). Real rigs add tens to
	// thousands of nanoseconds.
	LinkDelayNs float64
}

// Scenario is one unlock attempt.
type Scenario struct {
	// FobDistanceM is the true vehicle–fob distance.
	FobDistanceM float64
	// Relay, when non-nil, forwards the exchange.
	Relay *Relay
}

// Result reports the outcome of an unlock attempt.
type Result struct {
	Unlocked          bool
	IdentityVerified  bool
	MeasuredDistanceM float64
	Reason            string
}

// Vehicle is the PKES verifier.
type Vehicle struct {
	system       System
	key          []byte
	unlockRangeM float64
	session      uint32
	rng          *sim.RNG
}

// Fob is the PKES prover; it shares the vehicle's key.
type Fob struct {
	key []byte
}

// NewPair provisions a vehicle and its paired fob.
func NewPair(system System, key []byte, unlockRangeM float64, rng *sim.RNG) (*Vehicle, *Fob, error) {
	if len(key) != 16 {
		return nil, nil, fmt.Errorf("pkes: key must be 16 bytes, got %d", len(key))
	}
	if unlockRangeM <= 0 {
		return nil, nil, fmt.Errorf("pkes: unlock range %f", unlockRangeM)
	}
	k := append([]byte(nil), key...)
	return &Vehicle{system: system, key: k, unlockRangeM: unlockRangeM, rng: rng},
		&Fob{key: k}, nil
}

// respond is the fob's data-layer challenge–response.
func (f *Fob) respond(challenge []byte) ([]byte, error) {
	return vcrypto.TruncatedCMAC(f.key, challenge, 64)
}

// Attempt runs one unlock attempt against the fob under the scenario.
// A relay forwards the data layer faithfully, so identity verification
// always succeeds; whether the *proximity* layer is fooled depends on
// the system design.
func (v *Vehicle) Attempt(f *Fob, sc Scenario) (Result, error) {
	v.session++
	var res Result

	// Data layer: challenge–response. The relay forwards bits
	// unchanged, so this succeeds whenever the real fob is reachable.
	challenge := make([]byte, 16)
	binary.BigEndian.PutUint32(challenge, v.session)
	v.rng.Bytes(challenge[4:])
	resp, err := f.respond(challenge)
	if err != nil {
		return res, err
	}
	ok, err := vcrypto.VerifyTruncatedCMAC(v.key, challenge, resp)
	if err != nil {
		return res, err
	}
	res.IdentityVerified = ok
	if !ok {
		res.Reason = "identity verification failed"
		return res, nil
	}

	switch v.system {
	case LegacyRSSI:
		return v.attemptRSSI(sc, res)
	case UWBSecureHRP:
		return v.attemptHRP(sc, res)
	case UWBLRPBounding:
		return v.attemptLRP(sc, res)
	default:
		return res, fmt.Errorf("pkes: unknown system %v", v.system)
	}
}

// attemptRSSI: the vehicle concludes the fob is near simply because the
// LF exchange completed with adequate signal strength — which a relay
// with amplification always provides.
func (v *Vehicle) attemptRSSI(sc Scenario, res Result) (Result, error) {
	if sc.Relay != nil {
		// The relay re-radiates the LF field near the fob and the UHF
		// response near the vehicle: the link "looks" close.
		res.MeasuredDistanceM = 1.0
		res.Unlocked = true
		res.Reason = "rssi proximity satisfied via relay"
		return res, nil
	}
	res.MeasuredDistanceM = sc.FobDistanceM
	if sc.FobDistanceM <= v.unlockRangeM {
		res.Unlocked = true
	} else {
		res.Reason = fmt.Sprintf("fob out of LF range (%.1f m)", sc.FobDistanceM)
	}
	return res, nil
}

// attemptHRP: secure ToF ranging. The relay cannot subtract propagation
// time, so the measured distance through it is >= the true distance.
func (v *Vehicle) attemptHRP(sc Scenario, res Result) (Result, error) {
	extra := 0.0
	if sc.Relay != nil {
		extra = sc.Relay.LinkDelayNs
	}
	dist, err := ranging.DSTWR(ranging.TWRConfig{
		DistanceM:    sc.FobDistanceM,
		ReplyDelayNs: 500,
		ExtraPathNs:  extra,
	})
	if err != nil {
		return res, err
	}
	// The ToF exchange itself is protected by the secure HRP receiver;
	// verify the STS-level measurement agrees (one observation).
	sess := uwb.Session{
		Key: v.key, Session: v.session, Pulses: 256,
		Channel: uwb.Channel{DistanceM: dist, NoiseStd: 0.2},
		Secure:  true, Config: uwb.DefaultSecureConfig(),
	}
	m, err := sess.Measure(nil, v.rng)
	if err != nil {
		return res, err
	}
	if !m.Accepted {
		res.Reason = "ranging integrity check failed: " + m.Reason
		return res, nil
	}
	res.MeasuredDistanceM = m.MeasuredDistanceM
	if res.MeasuredDistanceM <= v.unlockRangeM {
		res.Unlocked = true
	} else {
		res.Reason = fmt.Sprintf("fob too far (%.1f m measured)", res.MeasuredDistanceM)
	}
	return res, nil
}

// attemptLRP: distance bounding; a relay is exactly the mafia-fraud
// adversary, answering near the vehicle for a far-away fob.
func (v *Vehicle) attemptLRP(sc Scenario, res Result) (Result, error) {
	cfg := ranging.BoundingConfig{
		Rounds:            32,
		TrueDistanceM:     sc.FobDistanceM,
		AttackerDistanceM: 1.0,
		MaxBitErrors:      0,
	}
	strategy := ranging.NoFraud
	if sc.Relay != nil {
		// A pure relay adds delay; to actually appear close the relay
		// must answer early, i.e. guess response bits.
		strategy = ranging.MafiaFraudPreAsk
	}
	b, err := ranging.RunBounding(cfg, strategy, v.rng)
	if err != nil {
		return res, err
	}
	if !b.Accepted {
		res.MeasuredDistanceM = b.DistanceM
		res.Reason = fmt.Sprintf("distance bounding rejected (%d bit errors)", b.BitErrors)
		return res, nil
	}
	res.MeasuredDistanceM = b.DistanceM
	if b.DistanceM <= v.unlockRangeM {
		res.Unlocked = true
	} else {
		res.Reason = fmt.Sprintf("fob too far (%.1f m bounded)", b.DistanceM)
	}
	return res, nil
}
