package pkes

import (
	"testing"

	"autosec/internal/sim"
)

var key = []byte("pkes-shared-key!")

func newPair(t *testing.T, sys System, seed int64) (*Vehicle, *Fob) {
	t.Helper()
	v, f, err := NewPair(sys, key, 2.0, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return v, f
}

func TestNewPairValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, _, err := NewPair(LegacyRSSI, []byte("short"), 2, rng); err == nil {
		t.Error("short key accepted")
	}
	if _, _, err := NewPair(LegacyRSSI, key, 0, rng); err == nil {
		t.Error("zero unlock range accepted")
	}
}

func TestLegacyUnlocksWhenFobNear(t *testing.T) {
	v, f := newPair(t, LegacyRSSI, 1)
	res, err := v.Attempt(f, Scenario{FobDistanceM: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unlocked || !res.IdentityVerified {
		t.Errorf("near fob did not unlock: %+v", res)
	}
}

func TestLegacyRejectsFarFobWithoutRelay(t *testing.T) {
	v, f := newPair(t, LegacyRSSI, 1)
	res, err := v.Attempt(f, Scenario{FobDistanceM: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unlocked {
		t.Error("far fob unlocked without relay")
	}
}

func TestLegacyRelayAttackSucceeds(t *testing.T) {
	// The paper's ref [1]: relay defeats legacy PKES even though the
	// crypto is sound.
	v, f := newPair(t, LegacyRSSI, 1)
	res, err := v.Attempt(f, Scenario{FobDistanceM: 100, Relay: &Relay{LinkDelayNs: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IdentityVerified {
		t.Error("relay should forward the challenge-response untouched")
	}
	if !res.Unlocked {
		t.Errorf("relay attack failed against legacy PKES: %+v", res)
	}
}

func TestUWBHRPUnlocksNearFob(t *testing.T) {
	v, f := newPair(t, UWBSecureHRP, 2)
	res, err := v.Attempt(f, Scenario{FobDistanceM: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unlocked {
		t.Errorf("near fob rejected by UWB HRP: %+v", res)
	}
}

func TestUWBHRPDefeatsRelay(t *testing.T) {
	v, f := newPair(t, UWBSecureHRP, 2)
	for i := 0; i < 10; i++ {
		res, err := v.Attempt(f, Scenario{FobDistanceM: 100, Relay: &Relay{LinkDelayNs: 300}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Unlocked {
			t.Fatalf("relay defeated UWB ToF ranging on trial %d: %+v", i, res)
		}
		if !res.IdentityVerified {
			t.Error("identity layer should still verify through the relay")
		}
	}
}

func TestUWBHRPRejectsFobJustOutsideRange(t *testing.T) {
	v, f := newPair(t, UWBSecureHRP, 3)
	res, err := v.Attempt(f, Scenario{FobDistanceM: 5.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unlocked {
		t.Errorf("fob at 5 m unlocked with 2 m policy: %+v", res)
	}
}

func TestLRPBoundingUnlocksNearFob(t *testing.T) {
	v, f := newPair(t, UWBLRPBounding, 4)
	res, err := v.Attempt(f, Scenario{FobDistanceM: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unlocked {
		t.Errorf("near fob rejected by distance bounding: %+v", res)
	}
}

func TestLRPBoundingDefeatsRelayStatistically(t *testing.T) {
	v, f := newPair(t, UWBLRPBounding, 5)
	unlocked := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		res, err := v.Attempt(f, Scenario{FobDistanceM: 100, Relay: &Relay{LinkDelayNs: 300}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Unlocked {
			unlocked++
		}
	}
	// Pre-ask mafia fraud against 32 rounds: (3/4)^32 ≈ 1e-4.
	if unlocked > 2 {
		t.Errorf("relay (mafia fraud) unlocked %d/%d times against distance bounding", unlocked, trials)
	}
}

func TestAttackSurfaceComparisonAcrossSystems(t *testing.T) {
	// The paired claim of §II-A in one test: the same relay rig is
	// decisive against legacy and useless against both UWB designs.
	relay := &Relay{LinkDelayNs: 400}
	outcomes := map[System]bool{}
	for _, sys := range []System{LegacyRSSI, UWBSecureHRP, UWBLRPBounding} {
		v, f := newPair(t, sys, 7)
		res, err := v.Attempt(f, Scenario{FobDistanceM: 50, Relay: relay})
		if err != nil {
			t.Fatal(err)
		}
		outcomes[sys] = res.Unlocked
	}
	if !outcomes[LegacyRSSI] {
		t.Error("legacy should fall to the relay")
	}
	if outcomes[UWBSecureHRP] || outcomes[UWBLRPBounding] {
		t.Errorf("UWB systems fell to the relay: %+v", outcomes)
	}
}

func TestSystemString(t *testing.T) {
	for s, want := range map[System]string{
		LegacyRSSI: "legacy-rssi", UWBSecureHRP: "uwb-hrp-secure", UWBLRPBounding: "uwb-lrp-bounding",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
