package ptp

import (
	"math"
	"testing"
	"testing/quick"
)

func links(n int) []*Link {
	out := make([]*Link, n)
	for i := range out {
		out[i] = &Link{Name: string(rune('a' + i)), FwdNs: 5000, RevNs: 5000}
	}
	return out
}

func TestSyncBenignExact(t *testing.T) {
	master := Clock{OffsetNs: 0}
	slave := Clock{OffsetNs: 123456}
	link := &Link{Name: "a", FwdNs: 5000, RevNs: 5000}
	res := Sync(master, slave, link, 0)
	if math.Abs(res.ErrorNs()) > 1e-9 {
		t.Errorf("benign sync error %v ns", res.ErrorNs())
	}
	if math.Abs(res.PathDelayNs-5000) > 1e-9 {
		t.Errorf("path delay %v", res.PathDelayNs)
	}
}

func TestSyncOffsetsCancelProperty(t *testing.T) {
	f := func(mOff, sOff int32) bool {
		master := Clock{OffsetNs: float64(mOff)}
		slave := Clock{OffsetNs: float64(sOff)}
		link := &Link{FwdNs: 4000, RevNs: 4000}
		res := Sync(master, slave, link, 1e9)
		return math.Abs(res.ErrorNs()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayAttackSkewsStandardPTP(t *testing.T) {
	master, slave := Clock{}, Clock{OffsetNs: 1000}
	link := &Link{Name: "a", FwdNs: 5000, RevNs: 5000, AttackFwdNs: 2000}
	res := Sync(master, slave, link, 0)
	// Forward delay δ biases the estimate by +δ/2.
	if math.Abs(res.ErrorNs()-1000) > 1e-9 {
		t.Errorf("attack bias %v ns, want 1000", res.ErrorNs())
	}
	// Reverse attack biases the other way.
	link2 := &Link{Name: "b", FwdNs: 5000, RevNs: 5000, AttackRevNs: 2000}
	res2 := Sync(master, slave, link2, 0)
	if math.Abs(res2.ErrorNs()+1000) > 1e-9 {
		t.Errorf("reverse attack bias %v ns, want -1000", res2.ErrorNs())
	}
}

func TestCycleMeasurementIgnoresClockOffsets(t *testing.T) {
	// The whole point of the cyclic measurement: only one clock is
	// read, so offsets cannot contaminate it.
	master := Clock{OffsetNs: 9e12}
	a := &Link{Name: "a", FwdNs: 5000, RevNs: 5000}
	b := &Link{Name: "b", FwdNs: 7000, RevNs: 7000}
	got := MeasureCycle(master, a, b, 500, 12345)
	if math.Abs(got-12000) > 1e-9 {
		t.Errorf("cycle = %v, want 12000", got)
	}
}

func TestAnalyzeBenignNoAlarm(t *testing.T) {
	master, slave := Clock{}, Clock{OffsetNs: 555}
	rep, err := Analyze(master, slave, links(3), 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attacked() {
		t.Errorf("benign paths flagged: %v", rep.AttackedPaths)
	}
	if math.Abs(rep.Sync.ErrorNs()) > 1e-9 {
		t.Errorf("benign sync error %v", rep.Sync.ErrorNs())
	}
}

func TestAnalyzeLocalizesSingleAttackedPath(t *testing.T) {
	master, slave := Clock{}, Clock{OffsetNs: 555}
	paths := links(3)
	paths[1].AttackFwdNs = 3000 // attack path b, forward direction
	rep, err := Analyze(master, slave, paths, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Attacked() {
		t.Fatal("attack not detected")
	}
	if len(rep.AttackedPaths) != 1 || rep.AttackedPaths[0] != "b" {
		t.Errorf("attributed to %v, want [b]", rep.AttackedPaths)
	}
	if math.Abs(rep.AsymmetryNs["b"]-3000) > 100 {
		t.Errorf("asymmetry estimate %v, want ~3000", rep.AsymmetryNs["b"])
	}
	// The final sync must route around the attacked path.
	if rep.UsedPath == "b" {
		t.Error("synced over the attacked path")
	}
	if math.Abs(rep.Sync.ErrorNs()) > 1e-9 {
		t.Errorf("post-detection sync error %v ns", rep.Sync.ErrorNs())
	}
}

func TestAnalyzeReverseAttack(t *testing.T) {
	master, slave := Clock{}, Clock{OffsetNs: -777}
	paths := links(4)
	paths[2].AttackRevNs = 1500
	rep, err := Analyze(master, slave, paths, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AttackedPaths) != 1 || rep.AttackedPaths[0] != "c" {
		t.Errorf("attributed to %v, want [c]", rep.AttackedPaths)
	}
	if math.Abs(rep.AsymmetryNs["c"]+1500) > 100 {
		t.Errorf("asymmetry %v, want ~-1500", rep.AsymmetryNs["c"])
	}
	if math.Abs(rep.Sync.ErrorNs()) > 1e-9 {
		t.Errorf("sync error %v", rep.Sync.ErrorNs())
	}
}

func TestAnalyzeTwoPathsDetectsWithoutAttribution(t *testing.T) {
	master, slave := Clock{}, Clock{OffsetNs: 1}
	paths := links(2)
	paths[0].AttackFwdNs = 2000
	rep, err := Analyze(master, slave, paths, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Attacked() {
		t.Error("two-path attack not detected")
	}
}

func TestAnalyzeAttackOnSyncPathForcesFailover(t *testing.T) {
	// Attack the path that plain PTP would have used (path a) and show
	// the error with and without PTPsec.
	master, slave := Clock{}, Clock{OffsetNs: 42}
	paths := links(3)
	paths[0].AttackFwdNs = 4000

	naive := Sync(master, slave, paths[0], 0)
	if math.Abs(naive.ErrorNs()-2000) > 1e-9 {
		t.Fatalf("naive PTP error %v, want 2000 (δ/2)", naive.ErrorNs())
	}
	rep, err := Analyze(master, slave, paths, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedPath == "a" {
		t.Error("PTPsec stayed on the attacked path")
	}
	if math.Abs(rep.Sync.ErrorNs()) > 1e-9 {
		t.Errorf("PTPsec residual error %v", rep.Sync.ErrorNs())
	}
}

func TestAnalyzeAsymmetricButBenignWithinTolerance(t *testing.T) {
	// Real links have small intrinsic asymmetry; it must not alarm.
	master, slave := Clock{}, Clock{OffsetNs: 10}
	paths := links(3)
	paths[0].FwdNs = 5040 // 40 ns intrinsic asymmetry
	rep, err := Analyze(master, slave, paths, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attacked() {
		t.Errorf("40 ns intrinsic asymmetry flagged with 100 ns tolerance: %v", rep.AttackedPaths)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Clock{}, Clock{}, links(1), 100, 0); err == nil {
		t.Error("single path accepted")
	}
}
