// Package ptp models Precision Time Protocol synchronization inside the
// vehicle network and its classic vulnerability — the time delay attack,
// where an on-path attacker delays messages in one direction and skews
// the slave clock without breaking any cryptography — together with the
// PTPsec countermeasure the paper cites (ref [53]): cyclic path
// asymmetry analysis over redundant paths. A cycle (out over one path,
// back over another) is timed entirely with one clock, so no trust in
// synchronization is needed; a unidirectional delay attack necessarily
// unbalances the cycles, which both detects the attack and, with three
// or more disjoint paths, localizes the attacked path so a clean one can
// be used.
//
// Exercised by experiment exp-ptp (paper §VIII).
package ptp

import (
	"fmt"
	"math"
	"sort"
)

// Link is one bidirectional network path with per-direction propagation
// delays in nanoseconds. Standard PTP assumes FwdNs ≈ RevNs.
type Link struct {
	Name  string
	FwdNs float64 // master → slave direction
	RevNs float64
	// AttackFwdNs / AttackRevNs are attacker-inserted extra delays.
	AttackFwdNs float64
	AttackRevNs float64
}

func (l *Link) fwd() float64 { return l.FwdNs + l.AttackFwdNs }
func (l *Link) rev() float64 { return l.RevNs + l.AttackRevNs }

// asymmetry is the quantity the delay attack cannot hide:
// (forward − reverse) including attack contributions.
func (l *Link) asymmetry() float64 { return l.fwd() - l.rev() }

// Clock is a node clock with a fixed offset from true time (oscillator
// drift is second-order over single exchanges and omitted).
type Clock struct {
	OffsetNs float64
}

// read converts a true timestamp to this clock's reading.
func (c Clock) read(trueNs float64) float64 { return trueNs + c.OffsetNs }

// SyncResult is one two-step PTP exchange outcome.
type SyncResult struct {
	// EstimatedOffsetNs is what the slave computes for its own offset
	// relative to the master.
	EstimatedOffsetNs float64
	// TrueOffsetNs is ground truth (scoring only).
	TrueOffsetNs float64
	// PathDelayNs is the estimated symmetric one-way delay.
	PathDelayNs float64
}

// ErrorNs is the residual error after the slave corrects by the
// estimate. For a benign symmetric path it is ~0; a unidirectional
// delay δ biases it by ±δ/2.
func (r SyncResult) ErrorNs() float64 { return r.EstimatedOffsetNs - r.TrueOffsetNs }

// Sync performs one two-step PTP exchange (Sync + DelayReq) between
// master and slave over the link, starting at true time t0.
func Sync(master, slave Clock, link *Link, t0 float64) SyncResult {
	t1 := master.read(t0)
	t2 := slave.read(t0 + link.fwd())
	t3 := slave.read(t0 + link.fwd() + 1000)
	t4 := master.read(t0 + link.fwd() + 1000 + link.rev())

	offset := ((t2 - t1) - (t4 - t3)) / 2
	delay := ((t2 - t1) + (t4 - t3)) / 2
	return SyncResult{
		EstimatedOffsetNs: offset,
		TrueOffsetNs:      slave.OffsetNs - master.OffsetNs,
		PathDelayNs:       delay,
	}
}

// MeasureCycle times a probe out over path a and back over path b,
// reading only the master's clock, so clock offsets cancel exactly. The
// slave's turnaround time is declared and subtracted (it is the same
// hardware constant in both directions, so an attacker gains nothing by
// it).
func MeasureCycle(master Clock, a, b *Link, turnaroundNs, t0 float64) float64 {
	start := master.read(t0)
	end := master.read(t0 + a.fwd() + turnaroundNs + b.rev())
	return end - start - turnaroundNs
}

// Report is the PTPsec analysis outcome.
type Report struct {
	// AsymmetryNs estimates each path's (forward − reverse) asymmetry,
	// assuming most paths are benign-symmetric.
	AsymmetryNs map[string]float64
	// AttackedPaths lists paths whose asymmetry exceeds the tolerance.
	AttackedPaths []string
	// Sync is the final synchronization over the best (least
	// asymmetric) path.
	Sync SyncResult
	// UsedPath names the path chosen for the final sync.
	UsedPath string
}

// Attacked reports whether any path was flagged.
func (r *Report) Attacked() bool { return len(r.AttackedPaths) > 0 }

// Analyze runs cyclic asymmetry analysis over nPaths ≥ 2 disjoint paths
// and synchronizes over the path judged cleanest. With ≥ 3 paths a
// single attacked path is localized exactly; with 2 paths attacks are
// detected but attribution is ambiguous, so the sync falls back to the
// path with the smaller round-trip inflation.
//
// Mechanics: for paths i and j, Cycle(i→, j←) − Cycle(j→, i←) =
// asym(i) − asym(j). Measuring all pairs gives every pairwise
// difference; anchoring the solution so that the largest group of paths
// sits at zero asymmetry (the "most paths are honest" assumption, same
// as ref [53]) yields per-path estimates.
func Analyze(master, slave Clock, paths []*Link, toleranceNs, t0 float64) (*Report, error) {
	if len(paths) < 2 {
		return nil, fmt.Errorf("ptp: cyclic analysis needs ≥2 redundant paths, got %d", len(paths))
	}
	const turnaround = 500

	// Relative asymmetries vs paths[0].
	rel := make([]float64, len(paths))
	now := t0
	for i := 1; i < len(paths); i++ {
		c1 := MeasureCycle(master, paths[i], paths[0], turnaround, now)
		now += 1e6
		c2 := MeasureCycle(master, paths[0], paths[i], turnaround, now)
		now += 1e6
		rel[i] = c1 - c2 // asym(i) − asym(0)
	}

	// Anchor: choose the constant that zeroes the largest cluster of
	// paths. Cluster rel values within tolerance.
	anchor := clusterMode(rel, toleranceNs)
	report := &Report{AsymmetryNs: map[string]float64{}}
	bestIdx, bestAbs := 0, math.Inf(1)
	for i, p := range paths {
		asym := rel[i] - anchor
		report.AsymmetryNs[p.Name] = asym
		if math.Abs(asym) > toleranceNs {
			report.AttackedPaths = append(report.AttackedPaths, p.Name)
		}
		if math.Abs(asym) < bestAbs {
			bestIdx, bestAbs = i, math.Abs(asym)
		}
	}
	sort.Strings(report.AttackedPaths)

	report.UsedPath = paths[bestIdx].Name
	report.Sync = Sync(master, slave, paths[bestIdx], now)
	return report, nil
}

// clusterMode returns the value v such that shifting all entries by −v
// zeroes the largest subset (within tol). Ties resolve to the smaller
// magnitude shift, preferring "path 0 is honest".
func clusterMode(values []float64, tol float64) float64 {
	best, bestCount := 0.0, -1
	for _, candidate := range values {
		count := 0
		for _, v := range values {
			if math.Abs(v-candidate) <= tol {
				count++
			}
		}
		if count > bestCount || (count == bestCount && math.Abs(candidate) < math.Abs(best)) {
			best, bestCount = candidate, count
		}
	}
	return best
}
