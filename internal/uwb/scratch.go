package uwb

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"fmt"
)

// scratch is a per-Session buffer arena: the waveform, observation,
// decimation, and correlation buffers a ranging measurement needs, plus
// a one-entry STS cache. Reusing it across the hundreds of measurements
// an experiment sweep performs removes every steady-state allocation
// from the Measure hot path without changing a single output bit — all
// buffers are fully (re)initialised before use.
//
// A scratch (and therefore a Session) must not be shared between
// concurrently running measurements; experiments run sessions
// sequentially within one simulation.
type scratch struct {
	waveform Signal
	rx       Signal
	corr     []float64
	dec      []float64
	pack     []uint64

	// One-entry STS cache keyed by (key, session, pulses): repeated
	// measurements of an unchanged session skip the AES-CTR derivation.
	// The expanded AES cipher is cached separately per key, so sweeps
	// that advance the session counter still skip the key expansion.
	sts        *STS
	stsKey     []byte
	stsSession uint32
	aesBlock   cipher.Block
	ksBuf      []byte
}

// stsFor returns the STS for (key, session, pulses), reusing the cached
// derivation when the parameters are unchanged since the last call and
// the cached key schedule whenever the key is unchanged.
func (sc *scratch) stsFor(key []byte, session uint32, pulses int) (*STS, error) {
	sameKey := bytes.Equal(sc.stsKey, key)
	if sc.sts != nil && sc.stsSession == session &&
		len(sc.sts.Polarity) == pulses && sameKey {
		return sc.sts, nil
	}
	if pulses <= 0 {
		return nil, fmt.Errorf("uwb: sts length %d", pulses)
	}
	if !sameKey || sc.aesBlock == nil {
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, fmt.Errorf("uwb: sts key: %w", err)
		}
		sc.aesBlock = block
		sc.stsKey = append(sc.stsKey[:0], key...)
	}
	// Derive in place: the scratch owns its STS (nothing else retains
	// it), so the keystream buffer and every derived array are reused.
	need := (pulses + 7) / 8
	if cap(sc.ksBuf) < need {
		sc.ksBuf = make([]byte, need)
	}
	sc.ksBuf = sc.ksBuf[:need]
	ctrKeystream(sc.aesBlock, session, sc.ksBuf)
	if sc.sts == nil {
		sc.sts = &STS{}
	}
	sc.sts.setFromKeystream(sc.ksBuf, pulses)
	sc.stsSession = session
	return sc.sts, nil
}

// floatsFor returns a length-n slice reusing buf's backing array when
// large enough. Contents are unspecified; callers overwrite every
// element they read.
func floatsFor(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// u64For is floatsFor for uint64 slices.
func u64For(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}
