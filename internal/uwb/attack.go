package uwb

import (
	"autosec/internal/sim"
)

// Attacker mutates the signal a receiver observes. Implementations model
// the physical-layer adversaries of §II: distance reduction via ghost
// peaks, and distance enlargement via annihilation/overshadowing.
type Attacker interface {
	// Name identifies the attack in reports.
	Name() string
	// Inject alters rx in place (or returns a replacement). legitToA is
	// the sample at which the legitimate first path arrives — physical
	// attackers observe the channel, so they know this. tx is the
	// legitimate transmitted waveform (known shape, unknown polarity
	// content for STS unless the attacker holds the key).
	Inject(rx Signal, tx Signal, legitToA int, rng *sim.RNG) Signal
}

// GhostPeakAttacker models the HRP distance-reduction attack (Cicada /
// ghost peak, paper refs [4], [8]): the attacker cannot predict the
// pseudorandom STS, so it blindly injects its own high-power
// random-polarity pulse train AdvanceSamples earlier than the legitimate
// arrival. The random train correlates with the template as a random
// walk; with enough power the excursion forms an earlier "first path"
// that a naive unbounded back-search accepts.
type GhostPeakAttacker struct {
	AdvanceSamples int     // how much earlier than the legitimate path
	Power          float64 // amplitude of injected pulses (legit = 1.0)
}

func (a *GhostPeakAttacker) Name() string { return "ghost-peak" }

func (a *GhostPeakAttacker) Inject(rx Signal, tx Signal, legitToA int, rng *sim.RNG) Signal {
	start := legitToA - a.AdvanceSamples
	if start < 0 {
		start = 0
	}
	// Random polarity pulses on the same chip grid as the template so
	// they line up with correlation taps.
	n := len(tx) / ChipSpacing
	for i := 0; i < n; i++ {
		idx := start + i*ChipSpacing
		if idx >= len(rx) {
			break
		}
		s := 1.0
		if rng.Bool(0.5) {
			s = -1.0
		}
		rx[idx] += a.Power * s
	}
	return rx
}

// JamReplayAttacker models distance enlargement (paper refs [13], [14])
// the way it is practically mounted: phase-accurate signal annihilation
// is considered infeasible over the air, so the attacker *jams* the
// legitimate arrival window with high-power noise to keep the receiver
// from locking onto it, and replays the recorded waveform DelaySamples
// later so the measured distance grows. This is exactly the adversary
// UWB-ED (ref [13]) detects via energy analysis of the pre-path region.
type JamReplayAttacker struct {
	DelaySamples int     // extra delay of the replayed copy
	JamStd       float64 // std-dev of jamming noise over the legit window
	ReplayGain   float64 // amplitude of the delayed replay
}

func (a *JamReplayAttacker) Name() string { return "jam-replay" }

func (a *JamReplayAttacker) Inject(rx Signal, tx Signal, legitToA int, rng *sim.RNG) Signal {
	// Bury the legitimate arrival under jamming noise. Draws happen only
	// for in-range samples (idx rises monotonically), so filling in bulk
	// over exactly that prefix consumes the identical RNG stream.
	m := len(tx)
	if rem := len(rx) - legitToA; rem < m {
		m = rem
	}
	if m > 0 {
		std := a.JamStd
		var chunk [256]float64
		for off := 0; off < m; off += len(chunk) {
			c := m - off
			if c > len(chunk) {
				c = len(chunk)
			}
			rng.NormFill(chunk[:c])
			for i, v := range chunk[:c] {
				rx[legitToA+off+i] += std * v
			}
		}
	}
	// Replay the recorded waveform later and stronger. A record-and-
	// replay attacker reproduces the true STS content, just shifted.
	for i, v := range tx {
		idx := legitToA + a.DelaySamples + i
		if idx < len(rx) {
			rx[idx] += a.ReplayGain * v
		}
	}
	return rx
}

// OvershadowAttacker models the simpler enlargement variant: without
// cancelling anything, it replays the recorded signal later at much
// higher power so that a receiver keyed on the strongest path locks onto
// the late copy.
type OvershadowAttacker struct {
	DelaySamples int
	ReplayGain   float64
}

func (a *OvershadowAttacker) Name() string { return "overshadow" }

func (a *OvershadowAttacker) Inject(rx Signal, tx Signal, legitToA int, rng *sim.RNG) Signal {
	for i, v := range tx {
		idx := legitToA + a.DelaySamples + i
		if idx < len(rx) {
			rx[idx] += a.ReplayGain * v
		}
	}
	return rx
}

// Measurement is the outcome of one simulated one-way ranging
// observation.
type Measurement struct {
	TrueDistanceM     float64
	MeasuredDistanceM float64
	Accepted          bool
	Reason            string
}

// ErrorM returns the signed ranging error (measured − true) in metres;
// negative means distance reduction.
func (m Measurement) ErrorM() float64 { return m.MeasuredDistanceM - m.TrueDistanceM }

// Session bundles the parameters of a ranging observation so experiments
// can sweep them. A Session owns a scratch arena that Measure reuses
// across calls, so sweeps that mutate the public fields between
// measurements (fresh session counters, different pulse counts) run
// allocation-free after the first observation. A Session must not be
// used from multiple goroutines at once.
type Session struct {
	Key     []byte // STS key shared by the legitimate pair
	Session uint32 // STS session counter (fresh per measurement)
	Pulses  int    // STS length
	Channel Channel
	Secure  bool         // integrity-checked receiver vs naive
	Config  SecureConfig // used when Secure
	// NaiveThreshold is the first-path threshold of the naive receiver.
	NaiveThreshold float64

	scr *scratch
}

// Measure runs one observation: derive the STS, transmit it through the
// channel, let the attacker (nil for benign) tamper with the air, then
// estimate ToA with the configured receiver.
func (s *Session) Measure(att Attacker, rng *sim.RNG) (Measurement, error) {
	if s.scr == nil {
		s.scr = &scratch{}
	}
	sts, err := s.scr.stsFor(s.Key, s.Session, s.Pulses)
	if err != nil {
		return Measurement{}, err
	}
	tx := sts.waveformInto(s.scr.waveform)
	s.scr.waveform = tx
	obsLen := s.Channel.DelaySamples() + len(tx) + 512
	rx := s.Channel.propagateInto(s.scr.rx, tx, obsLen, rng)
	s.scr.rx = rx
	legitToA := s.Channel.DelaySamples()
	if att != nil {
		rx = att.Inject(rx, tx, legitToA, rng)
	}

	var res ToAResult
	if s.Secure {
		cfg := s.Config
		if cfg.ExpectedNoiseStd == 0 {
			// A real receiver calibrates its noise floor continuously;
			// the model takes it from the channel.
			cfg.ExpectedNoiseStd = s.Channel.NoiseStd
			if cfg.ExpectedNoiseStd < 0.05 {
				cfg.ExpectedNoiseStd = 0.05
			}
		}
		res = secureToA(s.scr, rx, sts, cfg)
	} else {
		th := s.NaiveThreshold
		if th == 0 {
			th = 0.4
		}
		res = naiveToA(s.scr, rx, sts, th)
	}
	return Measurement{
		TrueDistanceM:     s.Channel.DistanceM,
		MeasuredDistanceM: SamplesToMetres(res.Sample),
		Accepted:          res.Accepted,
		Reason:            res.Reason,
	}, nil
}
