//go:build amd64

#include "textflag.h"

// func corrBlock16(p unsafe.Pointer, pack []uint64, tailOff uintptr, n int, out *[16]float64)
//
// X0..X7 are the accumulators: lane 0 of Xc is window 2c, lane 1 is
// window 2c+1. Per packed template word two pulses are applied; each
// chain sees its pulses in ascending template order (offA then offB),
// so per-window rounding matches the scalar loops bit for bit.
TEXT ·corrBlock16(SB), NOSPLIT, $0-56
	MOVQ p+0(FP), DI
	MOVQ pack_base+8(FP), SI
	MOVQ pack_len+16(FP), CX
	MOVQ tailOff+32(FP), R8
	MOVQ n+40(FP), R9
	MOVQ out+48(FP), DX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	TESTQ CX, CX
	JZ   tail

loop:
	MOVQ (SI), AX
	ADDQ $8, SI
	MOVL AX, BX    // offA = low 32 bits (zero-extends)
	SHRQ $32, AX   // offB = high 32 bits
	ADDQ DI, BX
	ADDQ DI, AX
	// Pulse A into all 16 windows.
	MOVUPD (BX), X8
	MOVUPD 16(BX), X9
	MOVUPD 32(BX), X10
	MOVUPD 48(BX), X11
	ADDPD  X8, X0
	ADDPD  X9, X1
	ADDPD  X10, X2
	ADDPD  X11, X3
	MOVUPD 64(BX), X12
	MOVUPD 80(BX), X13
	MOVUPD 96(BX), X14
	MOVUPD 112(BX), X15
	ADDPD  X12, X4
	ADDPD  X13, X5
	ADDPD  X14, X6
	ADDPD  X15, X7
	// Pulse B into all 16 windows.
	MOVUPD (AX), X8
	MOVUPD 16(AX), X9
	MOVUPD 32(AX), X10
	MOVUPD 48(AX), X11
	ADDPD  X8, X0
	ADDPD  X9, X1
	ADDPD  X10, X2
	ADDPD  X11, X3
	MOVUPD 64(AX), X12
	MOVUPD 80(AX), X13
	MOVUPD 96(AX), X14
	MOVUPD 112(AX), X15
	ADDPD  X12, X4
	ADDPD  X13, X5
	ADDPD  X14, X6
	ADDPD  X15, X7
	DECQ CX
	JNZ  loop

tail:
	// Odd pulse count: one more template step at tailOff.
	TESTQ $1, R9
	JZ   store
	ADDQ DI, R8
	MOVUPD (R8), X8
	MOVUPD 16(R8), X9
	MOVUPD 32(R8), X10
	MOVUPD 48(R8), X11
	ADDPD  X8, X0
	ADDPD  X9, X1
	ADDPD  X10, X2
	ADDPD  X11, X3
	MOVUPD 64(R8), X12
	MOVUPD 80(R8), X13
	MOVUPD 96(R8), X14
	MOVUPD 112(R8), X15
	ADDPD  X12, X4
	ADDPD  X13, X5
	ADDPD  X14, X6
	ADDPD  X15, X7

store:
	MOVUPD X0, (DX)
	MOVUPD X1, 16(DX)
	MOVUPD X2, 32(DX)
	MOVUPD X3, 48(DX)
	MOVUPD X4, 64(DX)
	MOVUPD X5, 80(DX)
	MOVUPD X6, 96(DX)
	MOVUPD X7, 112(DX)
	RET
