package uwb

// Equivalence tests pinning the optimised PHY hot paths bit-for-bit
// against the reference implementations they replaced. The determinism
// contract of the campaign harness (identical outputs for identical
// seeds, byte-identical golden reports) only holds if these pass with
// exact float equality — tolerance-based comparison would hide the very
// regressions they exist to catch.

import (
	"bytes"
	"math"
	"testing"

	"autosec/internal/sim"
)

// randomSignal fills a signal with a mix of pulses and noise so the
// correlator sees both sparse and dense energy.
func randomSignal(rng *sim.RNG, n int) Signal {
	s := make(Signal, n)
	for i := range s {
		switch rng.Intn(4) {
		case 0:
			s[i] = rng.NormFloat64()
		case 1:
			s[i] = float64(rng.Intn(5) - 2)
		case 2:
			s[i] = rng.Float64()*2 - 1
		default:
			// leave zero: runs of silence exercise sign handling
		}
	}
	return s
}

func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCorrelateMatchesReference drives the optimised correlator across
// pulse counts that hit every code path — power-of-two (reciprocal
// multiply), odd (packed-pair epilogue), non-power-of-two (divide), and
// tiny — over random signals, with and without a scratch arena. The
// scratch is reused across iterations of differing sizes so stale
// buffer contents would surface as mismatches.
func TestCorrelateMatchesReference(t *testing.T) {
	rng := sim.NewRNG(1001)
	scr := &scratch{}
	pulseCounts := []int{1, 2, 3, 5, 7, 8, 13, 16, 31, 64, 100, 255, 256}
	for iter := 0; iter < 40; iter++ {
		pulses := pulseCounts[rng.Intn(len(pulseCounts))]
		sts, err := NewSTS([]byte("0123456789abcdef"), uint32(iter), pulses)
		if err != nil {
			t.Fatal(err)
		}
		// Observation lengths from shorter-than-template (nil result)
		// through exact fit to generous slack, plus non-multiples of
		// ChipSpacing so every residue count differs.
		span := (pulses - 1) * ChipSpacing
		obsLen := span + rng.Intn(3*ChipSpacing+5) - ChipSpacing
		if obsLen < 0 {
			obsLen = 0
		}
		rx := randomSignal(rng, obsLen)

		want := correlateRef(rx, sts)
		if got := Correlate(rx, sts); !equalBits(got, want) {
			t.Fatalf("pulses=%d obsLen=%d: scratchless Correlate diverged from reference", pulses, obsLen)
		}
		if got := correlateScratch(scr, rx, sts); !equalBits(got, want) {
			t.Fatalf("pulses=%d obsLen=%d: scratch Correlate diverged from reference", pulses, obsLen)
		}
	}
}

// TestCorrelateHandConstructedSTS covers the lazy template-derivation
// path for STS values built directly from a polarity slice (as the LRP
// preamble and several tests do) rather than via NewSTS.
func TestCorrelateHandConstructedSTS(t *testing.T) {
	rng := sim.NewRNG(1002)
	for _, pulses := range []int{1, 3, 8, 17} {
		pol := make([]int8, pulses)
		for i := range pol {
			pol[i] = int8(rng.Intn(2)*2 - 1)
		}
		sts := &STS{Polarity: pol}
		rx := randomSignal(rng, (pulses-1)*ChipSpacing+20)
		if !equalBits(Correlate(rx, sts), correlateRef(rx, sts)) {
			t.Fatalf("pulses=%d: hand-constructed STS diverged from reference", pulses)
		}
	}
}

// TestPropagateMatchesReference pins the buffer-reusing channel path to
// the allocating reference: same seed, same channel, bit-identical
// observation — including when the destination buffer carries stale
// contents from a previous, larger propagation.
func TestPropagateMatchesReference(t *testing.T) {
	seeds := sim.NewRNG(2001)
	var dst Signal
	for iter := 0; iter < 30; iter++ {
		ch := Channel{
			DistanceM: seeds.Float64() * 80,
			NoiseStd:  []float64{0, 0.05, 0.2, 1.5}[seeds.Intn(4)],
		}
		if seeds.Bool(0.5) {
			ch.LoSGain = 0.2 + seeds.Float64()
		}
		for t := seeds.Intn(3); t > 0; t-- {
			ch.Taps = append(ch.Taps, Tap{
				DelaySamples: seeds.Intn(12) - 2,
				Gain:         seeds.Float64() - 0.5,
			})
		}
		tx := randomSignal(seeds, 1+seeds.Intn(200))
		obsLen := len(tx) + seeds.Intn(300)
		seed := int64(3000 + iter)

		want := ch.propagateRef(tx, obsLen, sim.NewRNG(seed))
		got := ch.propagateInto(dst, tx, obsLen, sim.NewRNG(seed))
		if !equalBits(got, want) {
			t.Fatalf("iter %d: propagateInto diverged from reference (obsLen=%d taps=%d noise=%v)",
				iter, obsLen, len(ch.Taps), ch.NoiseStd)
		}
		dst = got // reuse, often shrinking, next iteration
	}
}

// TestScratchSTSMatchesNewSTS pins the in-place session-scratch STS
// derivation (cached AES schedule, manual CTR keystream, reused backing
// arrays) to NewSTS across keys, sessions, and pulse counts, including
// cache-hit repeats and key changes mid-sequence.
func TestScratchSTSMatchesNewSTS(t *testing.T) {
	keys := [][]byte{
		[]byte("0123456789abcdef"),
		[]byte("fedcba9876543210"),
		bytes.Repeat([]byte{0x5a}, 16),
	}
	scr := &scratch{}
	rng := sim.NewRNG(3001)
	for iter := 0; iter < 60; iter++ {
		key := keys[rng.Intn(len(keys))]
		session := uint32(rng.Intn(40))
		pulses := []int{1, 7, 32, 129, 256, 300}[rng.Intn(6)]

		want, err := NewSTS(key, session, pulses)
		if err != nil {
			t.Fatal(err)
		}
		got, err := scr.stsFor(key, session, pulses)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(int8Bytes(got.Polarity), int8Bytes(want.Polarity)) {
			t.Fatalf("iter %d: stsFor(key=%q, session=%d, pulses=%d) diverged from NewSTS",
				iter, key, session, pulses)
		}
		if !equalBits(got.Template(), want.Template()) {
			t.Fatalf("iter %d: cached template diverged", iter)
		}
		// Cache hit must return the same derivation.
		again, err := scr.stsFor(key, session, pulses)
		if err != nil {
			t.Fatal(err)
		}
		if again != got {
			t.Fatalf("iter %d: repeated stsFor did not hit the cache", iter)
		}
	}
	if _, err := scr.stsFor(keys[0], 1, 0); err == nil {
		t.Error("stsFor accepted zero pulses")
	}
	if _, err := scr.stsFor([]byte("short"), 1, 8); err == nil {
		t.Error("stsFor accepted an invalid key")
	}
}

func int8Bytes(p []int8) []byte {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = byte(v)
	}
	return b
}

// FuzzCorrelateEquivalence lets the fuzzer hunt for a (signal, template
// length, offset) combination where the optimised correlator rounds
// differently from the reference. Any mismatch is a determinism bug.
func FuzzCorrelateEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(8), uint16(80))
	f.Add(int64(2), uint16(1), uint16(0))
	f.Add(int64(3), uint16(255), uint16(2100))
	f.Add(int64(4), uint16(256), uint16(2048))
	f.Add(int64(5), uint16(13), uint16(97))
	f.Fuzz(func(t *testing.T, seed int64, pulses16, obsLen16 uint16) {
		pulses := int(pulses16)%512 + 1
		obsLen := int(obsLen16) % 4100
		rng := sim.NewRNG(seed)
		sts, err := NewSTS([]byte("0123456789abcdef"), uint32(seed), pulses)
		if err != nil {
			t.Fatal(err)
		}
		rx := randomSignal(rng, obsLen)
		want := correlateRef(rx, sts)
		if got := Correlate(rx, sts); !equalBits(got, want) {
			t.Fatalf("pulses=%d obsLen=%d seed=%d: optimised correlator diverged", pulses, obsLen, seed)
		}
		scr := &scratch{}
		if got := correlateScratch(scr, rx, sts); !equalBits(got, want) {
			t.Fatalf("pulses=%d obsLen=%d seed=%d: scratch correlator diverged", pulses, obsLen, seed)
		}
	})
}
