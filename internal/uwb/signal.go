// Package uwb models an IEEE 802.15.4z-style ultra-wideband ranging
// physical layer at discrete-time sample level: secure training
// sequences (STS) for the high-rate-pulse (HRP) mode, data pulses with
// distance commitment for the low-rate-pulse (LRP) mode, a multipath
// channel with additive noise, correlation-based time-of-arrival
// estimation, and the distance-manipulation attacks and receiver
// integrity checks the paper's §II discusses (Fig. 2).
//
// The model is a substitution for radio hardware (see DESIGN.md): the
// attacks of interest — ghost-peak injection, early-detect/late-commit,
// signal annihilation and overshadowing — are properties of the
// correlation and detection mathematics, which this package implements
// faithfully on float64 sample vectors.
//
// Exercised by experiments fig2 and ablate-sts.
package uwb

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"

	"autosec/internal/sim"
)

// Physical constants of the model.
const (
	// SamplesPerNs is the simulator's time resolution: 2 samples per
	// nanosecond (a 2 GHz baseband grid, ~15 cm per sample of range).
	SamplesPerNs = 2

	// SpeedOfLight in metres per nanosecond.
	SpeedOfLight = 0.299792458

	// MetresPerSample is the one-way range resolution of one sample.
	MetresPerSample = SpeedOfLight / SamplesPerNs

	// ChipSpacing is the number of samples between consecutive STS
	// pulses (pulse repetition interval on the sample grid).
	ChipSpacing = 8
)

// Signal is a discrete-time baseband signal on the simulator's sample
// grid.
type Signal []float64

// Add mixes other into s starting at sample offset, extending s if
// needed, and returns the (possibly reallocated) result.
func (s Signal) Add(other Signal, offset int) Signal {
	need := offset + len(other)
	if need > len(s) {
		grown := make(Signal, need)
		copy(grown, s)
		s = grown
	}
	for i, v := range other {
		s[offset+i] += v
	}
	return s
}

// Energy returns the sum of squared samples in [from, to).
func (s Signal) Energy(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s) {
		to = len(s)
	}
	e := 0.0
	for i := from; i < to; i++ {
		e += s[i] * s[i]
	}
	return e
}

// STS is a secure training sequence: a cryptographically pseudorandom
// antipodal (±1) pulse polarity sequence. Both sides of a ranging
// exchange derive it from a shared key and a session nonce, so an
// attacker without the key cannot predict pulse polarities in advance.
type STS struct {
	Polarity []int8 // +1 or -1 per pulse
}

// NewSTS derives a length-pulse STS from an AES-128 key and a session
// counter using AES-CTR as the pseudorandom generator, mirroring the
// 802.15.4z construction (AES-128 in counter mode seeded by the STS
// key and upper-96/counter fields).
func NewSTS(key []byte, session uint32, pulses int) (*STS, error) {
	if pulses <= 0 {
		return nil, fmt.Errorf("uwb: sts length %d", pulses)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("uwb: sts key: %w", err)
	}
	iv := make([]byte, aes.BlockSize)
	iv[0] = byte(session >> 24)
	iv[1] = byte(session >> 16)
	iv[2] = byte(session >> 8)
	iv[3] = byte(session)
	stream := cipher.NewCTR(block, iv)
	buf := make([]byte, (pulses+7)/8)
	stream.XORKeyStream(buf, buf)

	pol := make([]int8, pulses)
	for i := range pol {
		if buf[i/8]>>(uint(i)%8)&1 == 1 {
			pol[i] = 1
		} else {
			pol[i] = -1
		}
	}
	return &STS{Polarity: pol}, nil
}

// Waveform renders the STS as a baseband signal: one unit-amplitude
// pulse of the given polarity every ChipSpacing samples.
func (s *STS) Waveform() Signal {
	sig := make(Signal, len(s.Polarity)*ChipSpacing)
	for i, p := range s.Polarity {
		sig[i*ChipSpacing] = float64(p)
	}
	return sig
}

// Tap is one multipath component: a delayed, attenuated copy of the
// transmitted signal.
type Tap struct {
	DelaySamples int
	Gain         float64
}

// Channel models one-way propagation: a line-of-sight delay determined
// by distance, optional multipath taps (relative to the LoS path), and
// additive white Gaussian noise.
type Channel struct {
	DistanceM float64 // true transmitter–receiver distance in metres
	LoSGain   float64 // line-of-sight amplitude gain (default 1.0)
	Taps      []Tap   // multipath, delays relative to LoS arrival
	NoiseStd  float64 // AWGN standard deviation per sample
}

// DelaySamples returns the LoS propagation delay on the sample grid.
func (c *Channel) DelaySamples() int {
	return int(c.DistanceM/MetresPerSample + 0.5)
}

// Propagate applies the channel to tx and returns what the receiver
// observes in a window of length obsLen samples. The RNG supplies the
// noise so runs are reproducible.
func (c *Channel) Propagate(tx Signal, obsLen int, rng *sim.RNG) Signal {
	rx := make(Signal, obsLen)
	gain := c.LoSGain
	if gain == 0 {
		gain = 1.0
	}
	base := c.DelaySamples()
	place := func(delay int, g float64) {
		for i, v := range tx {
			idx := delay + i
			if idx >= 0 && idx < obsLen {
				rx[idx] += g * v
			}
		}
	}
	place(base, gain)
	for _, tap := range c.Taps {
		place(base+tap.DelaySamples, tap.Gain)
	}
	if c.NoiseStd > 0 {
		for i := range rx {
			rx[i] += c.NoiseStd * rng.NormFloat64()
		}
	}
	return rx
}

// SamplesToMetres converts a ToA expressed in samples to one-way
// distance in metres.
func SamplesToMetres(samples int) float64 {
	return float64(samples) * MetresPerSample
}

// MetresToSamples converts a one-way distance to the sample grid.
func MetresToSamples(m float64) int {
	return int(m/MetresPerSample + 0.5)
}
