// Package uwb models an IEEE 802.15.4z-style ultra-wideband ranging
// physical layer at discrete-time sample level: secure training
// sequences (STS) for the high-rate-pulse (HRP) mode, data pulses with
// distance commitment for the low-rate-pulse (LRP) mode, a multipath
// channel with additive noise, correlation-based time-of-arrival
// estimation, and the distance-manipulation attacks and receiver
// integrity checks the paper's §II discusses (Fig. 2).
//
// The model is a substitution for radio hardware (see DESIGN.md): the
// attacks of interest — ghost-peak injection, early-detect/late-commit,
// signal annihilation and overshadowing — are properties of the
// correlation and detection mathematics, which this package implements
// faithfully on float64 sample vectors.
//
// Exercised by experiments fig2 and ablate-sts.
package uwb

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"

	"autosec/internal/sim"
)

// Physical constants of the model.
const (
	// SamplesPerNs is the simulator's time resolution: 2 samples per
	// nanosecond (a 2 GHz baseband grid, ~15 cm per sample of range).
	SamplesPerNs = 2

	// SpeedOfLight in metres per nanosecond.
	SpeedOfLight = 0.299792458

	// MetresPerSample is the one-way range resolution of one sample.
	MetresPerSample = SpeedOfLight / SamplesPerNs

	// ChipSpacing is the number of samples between consecutive STS
	// pulses (pulse repetition interval on the sample grid).
	ChipSpacing = 8
)

// Signal is a discrete-time baseband signal on the simulator's sample
// grid.
type Signal []float64

// Add mixes other into s starting at sample offset, extending s if
// needed, and returns the (possibly reallocated) result.
func (s Signal) Add(other Signal, offset int) Signal {
	need := offset + len(other)
	if need > len(s) {
		grown := make(Signal, need)
		copy(grown, s)
		s = grown
	}
	for i, v := range other {
		s[offset+i] += v
	}
	return s
}

// Energy returns the sum of squared samples in [from, to).
func (s Signal) Energy(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s) {
		to = len(s)
	}
	e := 0.0
	for i := from; i < to; i++ {
		e += s[i] * s[i]
	}
	return e
}

// STS is a secure training sequence: a cryptographically pseudorandom
// antipodal (±1) pulse polarity sequence. Both sides of a ranging
// exchange derive it from a shared key and a session nonce, so an
// attacker without the key cannot predict pulse polarities in advance.
type STS struct {
	Polarity []int8 // +1 or -1 per pulse

	// template caches Polarity as float64 so the correlation inner loop
	// never converts int8 per element. NewSTS builds it eagerly; for
	// hand-constructed STS values it is filled on first use (that lazy
	// path is not safe for concurrent first calls). The correlator's
	// byte-offset form of the template depends on the observation length,
	// so it is built per call from Polarity (see correlateScratch).
	template []float64
}

// ensureDerived (re)builds the cached template forms when Polarity has
// changed length since they were derived.
func (s *STS) ensureDerived() {
	if len(s.template) == len(s.Polarity) {
		return
	}
	s.template = make([]float64, len(s.Polarity))
	for i, p := range s.Polarity {
		s.template[i] = float64(p)
	}
}

// Template returns the polarity sequence as ±1.0 float64 values, the
// form the correlators consume. The slice is cached on the STS and must
// not be mutated by callers.
func (s *STS) Template() []float64 {
	s.ensureDerived()
	return s.template
}

// NewSTS derives a length-pulse STS from an AES-128 key and a session
// counter using AES-CTR as the pseudorandom generator, mirroring the
// 802.15.4z construction (AES-128 in counter mode seeded by the STS
// key and upper-96/counter fields).
func NewSTS(key []byte, session uint32, pulses int) (*STS, error) {
	if pulses <= 0 {
		return nil, fmt.Errorf("uwb: sts length %d", pulses)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("uwb: sts key: %w", err)
	}
	return newSTSFromBlock(block, session, pulses)
}

// newSTSFromBlock is NewSTS with the AES key schedule already expanded;
// the session scratch caches the cipher per key so repeated derivations
// skip the key expansion.
func newSTSFromBlock(block cipher.Block, session uint32, pulses int) (*STS, error) {
	if pulses <= 0 {
		return nil, fmt.Errorf("uwb: sts length %d", pulses)
	}
	buf := make([]byte, (pulses+7)/8)
	ctrKeystream(block, session, buf)
	sts := &STS{}
	sts.setFromKeystream(buf, pulses)
	return sts, nil
}

// ctrKeystream fills dst with the AES-CTR keystream for the given
// session counter: byte-identical to cipher.NewCTR over a zero buffer
// with the session in the IV's first four bytes (the IV is incremented
// as one big-endian counter, as the stdlib stream does), but without
// allocating a stream object per derivation.
func ctrKeystream(block cipher.Block, session uint32, dst []byte) {
	var ctr, ks [aes.BlockSize]byte
	ctr[0] = byte(session >> 24)
	ctr[1] = byte(session >> 16)
	ctr[2] = byte(session >> 8)
	ctr[3] = byte(session)
	for off := 0; off < len(dst); off += aes.BlockSize {
		block.Encrypt(ks[:], ctr[:])
		copy(dst[off:], ks[:])
		for i := aes.BlockSize - 1; i >= 0; i-- {
			ctr[i]++
			if ctr[i] != 0 {
				break
			}
		}
	}
}

// setFromKeystream (re)derives the polarity sequence and every cached
// template form from a pseudorandom keystream, reusing the existing
// backing arrays when they are large enough so repeated derivations in
// a session scratch allocate nothing.
func (s *STS) setFromKeystream(ks []byte, pulses int) {
	if cap(s.Polarity) < pulses {
		s.Polarity = make([]int8, pulses)
		s.template = make([]float64, pulses)
	} else {
		s.Polarity = s.Polarity[:pulses]
		s.template = s.template[:pulses]
	}
	for i := range s.Polarity {
		if ks[i/8]>>(uint(i)%8)&1 == 1 {
			s.Polarity[i] = 1
			s.template[i] = 1
		} else {
			s.Polarity[i] = -1
			s.template[i] = -1
		}
	}
}

// Waveform renders the STS as a baseband signal: one unit-amplitude
// pulse of the given polarity every ChipSpacing samples.
func (s *STS) Waveform() Signal {
	return s.waveformInto(nil)
}

// waveformInto renders the waveform into dst when it has the right
// capacity, allocating only on first use of a scratch buffer.
func (s *STS) waveformInto(dst Signal) Signal {
	sig := sliceFor(dst, len(s.Polarity)*ChipSpacing)
	for i, p := range s.Polarity {
		sig[i*ChipSpacing] = float64(p)
	}
	return sig
}

// Tap is one multipath component: a delayed, attenuated copy of the
// transmitted signal.
type Tap struct {
	DelaySamples int
	Gain         float64
}

// Channel models one-way propagation: a line-of-sight delay determined
// by distance, optional multipath taps (relative to the LoS path), and
// additive white Gaussian noise.
type Channel struct {
	DistanceM float64 // true transmitter–receiver distance in metres
	LoSGain   float64 // line-of-sight amplitude gain (default 1.0)
	Taps      []Tap   // multipath, delays relative to LoS arrival
	NoiseStd  float64 // AWGN standard deviation per sample
}

// DelaySamples returns the LoS propagation delay on the sample grid.
func (c *Channel) DelaySamples() int {
	return int(c.DistanceM/MetresPerSample + 0.5)
}

// Propagate applies the channel to tx and returns what the receiver
// observes in a window of length obsLen samples. The RNG supplies the
// noise so runs are reproducible.
func (c *Channel) Propagate(tx Signal, obsLen int, rng *sim.RNG) Signal {
	return c.propagateInto(nil, tx, obsLen, rng)
}

// propagateInto is Propagate writing into a reusable buffer: dst is
// grown (or allocated) to obsLen and fully overwritten. The output is
// bit-identical to propagateRef for any buffer history because the
// window is zeroed before the taps land and the noise stream is drawn
// in the same per-sample order.
func (c *Channel) propagateInto(dst Signal, tx Signal, obsLen int, rng *sim.RNG) Signal {
	rx := sliceFor(dst, obsLen)
	gain := c.LoSGain
	if gain == 0 {
		gain = 1.0
	}
	base := c.DelaySamples()
	c.place(rx, tx, base, gain)
	for _, tap := range c.Taps {
		c.place(rx, tx, base+tap.DelaySamples, tap.Gain)
	}
	if c.NoiseStd > 0 {
		// Bulk noise: NormFill draws the identical stream a per-sample
		// NormFloat64 loop would (the equivalence test pins this against
		// propagateRef), in stack-sized chunks so the whole AWGN pass
		// stays allocation-free.
		std := c.NoiseStd
		var chunk [256]float64
		for off := 0; off < len(rx); off += len(chunk) {
			m := len(rx) - off
			if m > len(chunk) {
				m = len(chunk)
			}
			rng.NormFill(chunk[:m])
			for i, v := range chunk[:m] {
				rx[off+i] += std * v
			}
		}
	}
	return rx
}

// place mixes a delayed, scaled copy of tx into rx, clipping to the
// observation window.
func (c *Channel) place(rx, tx Signal, delay int, g float64) {
	for i, v := range tx {
		idx := delay + i
		if idx >= 0 && idx < len(rx) {
			rx[idx] += g * v
		}
	}
}

// propagateRef is the original, always-allocating channel model, kept
// verbatim as the reference implementation the property tests pin the
// optimised path against bit-for-bit.
func (c *Channel) propagateRef(tx Signal, obsLen int, rng *sim.RNG) Signal {
	rx := make(Signal, obsLen)
	gain := c.LoSGain
	if gain == 0 {
		gain = 1.0
	}
	base := c.DelaySamples()
	place := func(delay int, g float64) {
		for i, v := range tx {
			idx := delay + i
			if idx >= 0 && idx < obsLen {
				rx[idx] += g * v
			}
		}
	}
	place(base, gain)
	for _, tap := range c.Taps {
		place(base+tap.DelaySamples, tap.Gain)
	}
	if c.NoiseStd > 0 {
		for i := range rx {
			rx[i] += c.NoiseStd * rng.NormFloat64()
		}
	}
	return rx
}

// sliceFor returns a zeroed slice of length n, reusing buf's backing
// array when it is large enough.
func sliceFor(buf Signal, n int) Signal {
	if cap(buf) < n {
		return make(Signal, n)
	}
	s := buf[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// SamplesToMetres converts a ToA expressed in samples to one-way
// distance in metres.
func SamplesToMetres(samples int) float64 {
	return float64(samples) * MetresPerSample
}

// MetresToSamples converts a one-way distance to the sample grid.
func MetresToSamples(m float64) int {
	return int(m/MetresPerSample + 0.5)
}
