//go:build !amd64

package uwb

import "unsafe"

// haveCorrAsm gates the SSE2 correlation kernel in correlateScratch.
// Without it the 6-wide pure-Go block loop handles everything.
const haveCorrAsm = false

// corrBlock16 is never called when haveCorrAsm is false; this stub only
// satisfies the compiler on non-amd64 targets.
func corrBlock16(p unsafe.Pointer, pack []uint64, tailOff uintptr, n int, out *[16]float64) {
	panic("uwb: corrBlock16 without asm kernel")
}
