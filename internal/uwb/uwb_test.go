package uwb

import (
	"math"
	"testing"
	"testing/quick"

	"autosec/internal/sim"
)

var testKey = []byte("0123456789abcdef")

func TestNewSTSDeterministicPerSession(t *testing.T) {
	t.Parallel()
	a, err := NewSTS(testKey, 7, 256)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSTS(testKey, 7, 256)
	for i := range a.Polarity {
		if a.Polarity[i] != b.Polarity[i] {
			t.Fatal("same key+session diverged")
		}
	}
	c, _ := NewSTS(testKey, 8, 256)
	same := true
	for i := range a.Polarity {
		if a.Polarity[i] != c.Polarity[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different sessions produced identical STS")
	}
}

func TestNewSTSBalance(t *testing.T) {
	t.Parallel()
	s, err := NewSTS(testKey, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, p := range s.Polarity {
		sum += int(p)
	}
	if sum < -300 || sum > 300 {
		t.Errorf("STS polarity imbalance %d over 4096 pulses", sum)
	}
}

func TestNewSTSErrors(t *testing.T) {
	t.Parallel()
	if _, err := NewSTS(testKey, 1, 0); err == nil {
		t.Error("zero-length STS accepted")
	}
	if _, err := NewSTS([]byte("bad"), 1, 64); err == nil {
		t.Error("bad key accepted")
	}
}

func TestCorrelatePeakAtArrival(t *testing.T) {
	t.Parallel()
	sts, _ := NewSTS(testKey, 3, 128)
	tx := sts.Waveform()
	rng := sim.NewRNG(1)
	ch := Channel{DistanceM: 30, NoiseStd: 0.1}
	rx := ch.Propagate(tx, ch.DelaySamples()+len(tx)+100, rng)
	corr := Correlate(rx, sts)
	idx, val := argmaxAbs(corr)
	if idx != ch.DelaySamples() {
		t.Errorf("peak at %d, want %d", idx, ch.DelaySamples())
	}
	if val < 0.9 {
		t.Errorf("peak value %.3f, want ~1.0", val)
	}
}

func TestChannelMultipathAddsTaps(t *testing.T) {
	t.Parallel()
	sts, _ := NewSTS(testKey, 3, 128)
	tx := sts.Waveform()
	rng := sim.NewRNG(1)
	ch := Channel{DistanceM: 10, Taps: []Tap{{DelaySamples: 6, Gain: 0.5}}}
	rx := ch.Propagate(tx, ch.DelaySamples()+len(tx)+100, rng)
	corr := Correlate(rx, sts)
	base := ch.DelaySamples()
	if corr[base] < 0.9 {
		t.Errorf("LoS peak %.3f", corr[base])
	}
	if corr[base+6] < 0.4 {
		t.Errorf("multipath tap %.3f, want ~0.5", corr[base+6])
	}
}

func TestBenignRangingAccuracy(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(42)
	for _, dist := range []float64{1, 10, 50, 150} {
		s := Session{
			Key: testKey, Session: 1, Pulses: 256,
			Channel: Channel{DistanceM: dist, NoiseStd: 0.3},
			Secure:  true, Config: DefaultSecureConfig(),
		}
		m, err := s.Measure(nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Accepted {
			t.Errorf("dist %.0f: benign measurement rejected: %s", dist, m.Reason)
		}
		if math.Abs(m.ErrorM()) > 0.5 {
			t.Errorf("dist %.0f: error %.2f m", dist, m.ErrorM())
		}
	}
}

func TestGhostPeakReducesDistanceOnNaiveReceiver(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(7)
	succ := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		s := Session{
			Key: testKey, Session: uint32(i), Pulses: 64,
			Channel: Channel{DistanceM: 60, NoiseStd: 0.2},
			Secure:  false, NaiveThreshold: 0.3,
		}
		att := &GhostPeakAttacker{AdvanceSamples: 200, Power: 4}
		m, err := s.Measure(att, rng)
		if err != nil {
			t.Fatal(err)
		}
		if m.Accepted && m.ErrorM() < -5 {
			succ++
		}
	}
	if succ < trials/3 {
		t.Errorf("ghost peak succeeded only %d/%d against naive receiver; model should make this common", succ, trials)
	}
}

func TestGhostPeakDefeatedBySecureReceiver(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(7)
	succ := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		s := Session{
			Key: testKey, Session: uint32(i), Pulses: 256,
			Channel: Channel{DistanceM: 60, NoiseStd: 0.2},
			Secure:  true, Config: DefaultSecureConfig(),
		}
		att := &GhostPeakAttacker{AdvanceSamples: 200, Power: 4}
		m, err := s.Measure(att, rng)
		if err != nil {
			t.Fatal(err)
		}
		if m.Accepted && m.ErrorM() < -5 {
			succ++
		}
	}
	if succ > trials/20 {
		t.Errorf("ghost peak distance reduction accepted %d/%d times by secure receiver", succ, trials)
	}
}

func TestOvershadowEnlargesOnNaivePeakReceiver(t *testing.T) {
	t.Parallel()
	// A receiver keyed on the strongest path follows the late replica:
	// with a relative first-path threshold, the weak legit path falls
	// below threshold of the amplified replay.
	rng := sim.NewRNG(9)
	s := Session{
		Key: testKey, Session: 2, Pulses: 256,
		Channel: Channel{DistanceM: 20, LoSGain: 0.4, NoiseStd: 0.05},
		Secure:  false, NaiveThreshold: 0.6,
	}
	att := &OvershadowAttacker{DelaySamples: 300, ReplayGain: 5}
	m, err := s.Measure(att, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.ErrorM() < 20 {
		t.Errorf("overshadow enlargement only %.1f m on naive receiver", m.ErrorM())
	}
}

func TestEnlargementGuardDetectsJamReplay(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(11)
	detected := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		s := Session{
			Key: testKey, Session: uint32(i), Pulses: 256,
			Channel: Channel{DistanceM: 20, NoiseStd: 0.1},
			Secure:  true, Config: DefaultSecureConfig(),
		}
		att := &JamReplayAttacker{DelaySamples: 300, JamStd: 1.2, ReplayGain: 3}
		m, err := s.Measure(att, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Accepted || m.ErrorM() < 5 {
			detected++
		}
	}
	if detected < trials*3/4 {
		t.Errorf("enlargement guard caught only %d/%d jam-replay attacks", detected, trials)
	}
}

func TestSecureToARejectsNoise(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(13)
	sts, _ := NewSTS(testKey, 1, 256)
	rx := make(Signal, 4096)
	for i := range rx {
		rx[i] = 0.2 * rng.NormFloat64()
	}
	res := SecureToA(rx, sts, DefaultSecureConfig())
	if res.Accepted {
		t.Error("pure noise accepted as a ranging signal")
	}
}

func TestConsistencyHighAtTrueToA(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(17)
	sts, _ := NewSTS(testKey, 1, 256)
	tx := sts.Waveform()
	ch := Channel{DistanceM: 15, NoiseStd: 0.2}
	rx := ch.Propagate(tx, ch.DelaySamples()+len(tx)+64, rng)
	c := Consistency(rx, sts, ch.DelaySamples())
	if c < 0.95 {
		t.Errorf("consistency at true ToA %.3f", c)
	}
	wrong := Consistency(rx, sts, ch.DelaySamples()+101)
	if wrong > 0.7 {
		t.Errorf("consistency at wrong ToA %.3f, want ~0.5", wrong)
	}
}

func TestSignalAddGrows(t *testing.T) {
	t.Parallel()
	s := Signal{1, 2}
	s = s.Add(Signal{1, 1, 1}, 4)
	if len(s) != 7 || s[4] != 1 || s[0] != 1 {
		t.Errorf("Add result %v", s)
	}
}

func TestSignalEnergyBounds(t *testing.T) {
	t.Parallel()
	s := Signal{1, 2, 3}
	if e := s.Energy(-5, 100); e != 14 {
		t.Errorf("energy %v", e)
	}
	if e := s.Energy(1, 2); e != 4 {
		t.Errorf("energy %v", e)
	}
}

func TestMetreSampleConversionRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(n uint16) bool {
		samples := int(n % 5000)
		m := SamplesToMetres(samples)
		return MetresToSamples(m) == samples
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLRPBenignExchange(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(21)
	resp := make([]byte, 8)
	rng.Bytes(resp)
	s := LRPSession{
		Channel:         Channel{DistanceM: 25, NoiseStd: 0.1},
		ResponseBits:    32,
		CommitmentCheck: true,
		MaxBitErrors:    1,
	}
	m, err := s.MeasureLRP(resp, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Accepted {
		t.Fatalf("benign LRP rejected: %s", m.Reason)
	}
	if math.Abs(m.ErrorM()) > 0.5 {
		t.Errorf("LRP error %.2f m", m.ErrorM())
	}
}

func TestLRPEDLCDefeatedByCommitment(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(23)
	succ := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		resp := make([]byte, 8)
		rng.Bytes(resp)
		s := LRPSession{
			Channel:         Channel{DistanceM: 40, NoiseStd: 0.1},
			ResponseBits:    32,
			CommitmentCheck: true,
			MaxBitErrors:    1,
		}
		att := &EDLCAttacker{AdvanceSamples: 150, Power: 3}
		m, err := s.MeasureLRP(resp, att, rng)
		if err != nil {
			t.Fatal(err)
		}
		if m.Accepted && m.ErrorM() < -5 {
			succ++
		}
	}
	if succ > 1 {
		t.Errorf("ED/LC bypassed distance commitment %d/%d times (guessing 32 bits should be hopeless)", succ, trials)
	}
}

func TestLRPEDLCSucceedsWithoutCommitment(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(25)
	succ := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		resp := make([]byte, 8)
		rng.Bytes(resp)
		s := LRPSession{
			Channel:         Channel{DistanceM: 40, NoiseStd: 0.1},
			ResponseBits:    32,
			CommitmentCheck: false,
		}
		att := &EDLCAttacker{AdvanceSamples: 150, Power: 3}
		m, err := s.MeasureLRP(resp, att, rng)
		if err != nil {
			t.Fatal(err)
		}
		if m.Accepted && m.ErrorM() < -5 {
			succ++
		}
	}
	if succ < trials*2/3 {
		t.Errorf("ED/LC without commitment check succeeded only %d/%d", succ, trials)
	}
}

func TestLRPValidation(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(1)
	s := LRPSession{Channel: Channel{DistanceM: 5}, ResponseBits: 64}
	if _, err := s.MeasureLRP([]byte{1}, nil, rng); err == nil {
		t.Error("short payload accepted")
	}
}

func TestSessionMeasureBadKey(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(1)
	s := Session{Key: []byte("x"), Pulses: 64, Channel: Channel{DistanceM: 5}}
	if _, err := s.Measure(nil, rng); err == nil {
		t.Error("bad key accepted")
	}
}
