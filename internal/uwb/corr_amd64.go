//go:build amd64

package uwb

import "unsafe"

// haveCorrAsm gates the SSE2 correlation kernel in correlateScratch.
const haveCorrAsm = true

// corrBlock16 accumulates 16 adjacent correlation windows over the
// two-plane decimated signal. p points at the first window's base in the
// positive plane (dec[0] + 8·q); pack holds the template as packed byte
// offsets, two pulses per word (low 32 bits first), each offset already
// selecting the plane; when n is odd the final pulse's offset is tailOff.
// out[c] receives window q+c's raw (pre-division) sum.
//
// Each XMM lane owns exactly one window and adds its taps in ascending
// template order — lanes are never combined — so every out[c] is
// bit-identical to the scalar accumulation in correlateScratch and
// correlateRef. SSE2 is part of the amd64 baseline, so no CPUID gate is
// needed.
//
// Bounds contract (caller-proved, see correlateScratch): windows q..q+15
// are all < nq, so for every template offset the furthest float read,
// plane_base + (q+15) + (n−1), lies inside the live cnt floats of its
// plane; the 16-byte MOVUPD loads pairs of adjacent windows and never
// reads past window q+15's taps.
//
//go:noescape
func corrBlock16(p unsafe.Pointer, pack []uint64, tailOff uintptr, n int, out *[16]float64)
