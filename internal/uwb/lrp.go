package uwb

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"autosec/internal/sim"
)

// This file models the LRP (low-rate pulse) mode of Fig. 2: ranging
// security comes from combining distance bounding at the logical layer
// with distance commitment at the physical layer. The preamble commits
// the receiver to a time-of-arrival; the cryptographic payload bits must
// then appear at exact pulse positions relative to that commitment. An
// early-detect/late-commit attacker who advances the preamble gains
// distance but has to transmit payload pulses before it has seen them,
// so it must guess each bit.

// LRPPreambleLen is the number of pulses in the (publicly known) LRP
// preamble pattern.
const LRPPreambleLen = 32

// lrpPreamble returns the fixed, publicly known preamble pattern. The
// pattern is pseudorandom (derived from a constant hash) rather than
// periodic so its autocorrelation sidelobes are low: a periodic pattern
// would let the receiver commit to a shifted replica and misalign the
// payload decode.
//
// The preamble is a process-wide constant, so it is derived once; the
// template is built eagerly inside the once so the shared STS is
// read-only afterwards (concurrent experiment runs correlate against
// it).
func lrpPreamble() *STS {
	lrpOnce.Do(func() {
		digest := sha256.Sum256([]byte("autosec/uwb lrp preamble v1"))
		pol := make([]int8, LRPPreambleLen)
		for i := range pol {
			if digest[i/8]>>(uint(i)%8)&1 == 1 {
				pol[i] = 1
			} else {
				pol[i] = -1
			}
		}
		lrpPre = &STS{Polarity: pol}
		lrpPre.Template()
	})
	return lrpPre
}

var (
	lrpOnce sync.Once
	lrpPre  *STS
)

// EncodeLRP renders an LRP frame: the preamble followed by one pulse per
// payload bit (bit 1 → +1, bit 0 → −1), each on the chip grid.
func EncodeLRP(payload []byte, nbits int) Signal {
	pre := lrpPreamble().Waveform()
	sig := make(Signal, len(pre)+nbits*ChipSpacing)
	copy(sig, pre)
	for i := 0; i < nbits; i++ {
		v := -1.0
		if payload[i/8]>>(uint(i)%8)&1 == 1 {
			v = 1.0
		}
		sig[len(pre)+i*ChipSpacing] = v
	}
	return sig
}

// DecodeLRPBits reads nbits payload bits assuming the preamble's first
// pulse arrived at sample toa.
func DecodeLRPBits(rx Signal, toa, nbits int) []byte {
	out := make([]byte, (nbits+7)/8)
	payloadStart := toa + LRPPreambleLen*ChipSpacing
	for i := 0; i < nbits; i++ {
		idx := payloadStart + i*ChipSpacing
		if idx < len(rx) && rx[idx] > 0 {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

// LRPSession describes one LRP ranging observation.
type LRPSession struct {
	Channel Channel
	// ResponseBits is the number of cryptographic challenge-response
	// bits carried in the payload.
	ResponseBits int
	// CommitmentCheck enables the distance-commitment verification: the
	// payload decoded at the committed ToA must match the expected
	// response. Without it the receiver ranges on the preamble alone
	// (the insecure configuration).
	CommitmentCheck bool
	// MaxBitErrors tolerated by the commitment check (noise margin).
	MaxBitErrors int
}

// EDLCAttacker is the early-detect/late-commit adversary against LRP: it
// re-emits the preamble AdvanceSamples early at high power (so the
// receiver commits to an earlier ToA) and fills the payload positions
// with guessed pulses, since the true payload has not been transmitted
// yet at the moment it must send.
type EDLCAttacker struct {
	AdvanceSamples int
	Power          float64
}

func (a *EDLCAttacker) Name() string { return "edlc" }

// MeasureLRP runs one LRP observation. expected is the response payload
// both parties derived from the shared secret for this round.
func (s *LRPSession) MeasureLRP(expected []byte, att *EDLCAttacker, rng *sim.RNG) (Measurement, error) {
	if s.ResponseBits <= 0 || len(expected)*8 < s.ResponseBits {
		return Measurement{}, fmt.Errorf("uwb: lrp response bits %d with %d payload bytes", s.ResponseBits, len(expected))
	}
	tx := EncodeLRP(expected, s.ResponseBits)
	obsLen := s.Channel.DelaySamples() + len(tx) + 512
	rx := s.Channel.Propagate(tx, obsLen, rng)
	legitToA := s.Channel.DelaySamples()

	if att != nil {
		start := legitToA - att.AdvanceSamples
		if start < 0 {
			start = 0
		}
		// Advanced preamble copy: the preamble is public, so the
		// attacker reproduces it exactly.
		pre := lrpPreamble().Waveform()
		for i, v := range pre {
			if start+i < len(rx) {
				rx[start+i] += att.Power * v
			}
		}
		// Guessed payload pulses at the advanced positions.
		payloadStart := start + LRPPreambleLen*ChipSpacing
		for i := 0; i < s.ResponseBits; i++ {
			idx := payloadStart + i*ChipSpacing
			if idx >= len(rx) {
				break
			}
			g := 1.0
			if rng.Bool(0.5) {
				g = -1.0
			}
			rx[idx] += att.Power * g
		}
	}

	// The receiver commits to the earliest strong preamble correlation.
	pre := lrpPreamble()
	corr := Correlate(rx, pre)
	if len(corr) == 0 {
		return Measurement{}, fmt.Errorf("uwb: lrp observation too short")
	}
	_, peakVal := argmaxAbs(corr)
	committed := -1
	for k, v := range corr {
		if v >= 0.5*peakVal && v > 0.3 {
			committed = k
			break
		}
	}
	if committed < 0 {
		return Measurement{TrueDistanceM: s.Channel.DistanceM, Accepted: false, Reason: "no preamble"}, nil
	}

	m := Measurement{
		TrueDistanceM:     s.Channel.DistanceM,
		MeasuredDistanceM: SamplesToMetres(committed),
		Accepted:          true,
	}
	if s.CommitmentCheck {
		got := DecodeLRPBits(rx, committed, s.ResponseBits)
		errs := bitErrors(got, expected, s.ResponseBits)
		if errs > s.MaxBitErrors {
			m.Accepted = false
			m.Reason = fmt.Sprintf("distance commitment violated: %d/%d response bit errors", errs, s.ResponseBits)
		}
	}
	return m, nil
}

func bitErrors(a, b []byte, nbits int) int {
	errs := 0
	for i := 0; i < nbits; i++ {
		ba := a[i/8] >> (uint(i) % 8) & 1
		bb := b[i/8] >> (uint(i) % 8) & 1
		if ba != bb {
			errs++
		}
	}
	return errs
}
