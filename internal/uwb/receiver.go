package uwb

import (
	"fmt"
	"math"
)

// Correlate computes the normalized cross-correlation of the received
// signal with the STS template at every candidate offset. Entry k is the
// correlation assuming the first STS pulse arrived at sample k, divided
// by the number of pulses, so a clean unit-gain arrival scores ~1.0.
func Correlate(rx Signal, sts *STS) []float64 {
	n := len(sts.Polarity)
	maxOffset := len(rx) - (n-1)*ChipSpacing
	if maxOffset <= 0 {
		return nil
	}
	out := make([]float64, maxOffset)
	for k := 0; k < maxOffset; k++ {
		sum := 0.0
		for i, p := range sts.Polarity {
			sum += float64(p) * rx[k+i*ChipSpacing]
		}
		out[k] = sum / float64(n)
	}
	return out
}

// ToAResult is the outcome of a time-of-arrival estimation.
type ToAResult struct {
	// Sample is the estimated arrival sample of the first STS pulse.
	Sample int
	// Peak is the normalized correlation value at Sample.
	Peak float64
	// Accepted reports whether the receiver's integrity checks (if
	// any) passed. A naive receiver always accepts.
	Accepted bool
	// Reason is empty when Accepted, otherwise a short diagnosis.
	Reason string
}

// NaiveToA implements the insecure first-path search the paper warns
// about: it finds the global correlation maximum, then walks backwards
// without bound accepting any earlier sample whose correlation exceeds
// threshold·peak as the "first path". An attacker who injects even a
// modest ghost peak in front of the legitimate arrival shortens the
// measured distance. It performs no validity check on the result.
func NaiveToA(rx Signal, sts *STS, threshold float64) ToAResult {
	corr := Correlate(rx, sts)
	if len(corr) == 0 {
		return ToAResult{Sample: -1}
	}
	peakIdx, peakVal := argmaxAbs(corr)
	first := peakIdx
	for k := 0; k < peakIdx; k++ {
		if math.Abs(corr[k]) >= threshold*math.Abs(peakVal) {
			first = k
			break
		}
	}
	return ToAResult{Sample: first, Peak: corr[first], Accepted: true}
}

// SecureConfig parametrizes the integrity-checked receiver.
type SecureConfig struct {
	// BackSearchWindow bounds, in samples, how far before the strongest
	// path the receiver will accept an earlier "first path". 802.15.4z
	// implementations bound this window to the channel's plausible
	// excess delay (a few ns) precisely to defeat ghost peaks far in
	// front of the real signal.
	BackSearchWindow int
	// FirstPathThreshold is the fraction of the main peak an earlier
	// sample must reach to be considered a first path.
	FirstPathThreshold float64
	// MinPeak is the minimum normalized correlation for a detection to
	// be considered a signal at all.
	MinPeak float64
	// MinConsistency is the minimum per-pulse polarity agreement rate
	// at the chosen ToA (the STS consistency check): for each pulse,
	// the sign of the received sample must match the expected STS
	// polarity. A true arrival agrees on nearly all pulses; a random
	// ghost peak agrees on about half.
	MinConsistency float64
	// EnlargementGuard, when true, enables the UWB-ED-style energy test
	// for distance enlargement: the region before the accepted first
	// path must contain only channel noise. A jam-and-replay attacker
	// necessarily deposits jamming energy (or leaves the intact
	// legitimate signal) in that region.
	EnlargementGuard bool
	// ExpectedNoiseStd is the receiver's calibrated noise floor used by
	// the enlargement guard; 0 lets the caller (Session) fill it from
	// the channel model, as a real receiver's AGC/noise estimator does.
	ExpectedNoiseStd float64
}

// DefaultSecureConfig returns the configuration used by the paper
// experiments: a 16-sample (8 ns) back-search window, 40% first-path
// threshold, 0.25 minimum peak, 85% STS consistency, enlargement guard
// on.
func DefaultSecureConfig() SecureConfig {
	return SecureConfig{
		BackSearchWindow:   16,
		FirstPathThreshold: 0.4,
		MinPeak:            0.25,
		MinConsistency:     0.85,
		EnlargementGuard:   true,
	}
}

// SecureToA implements the integrity-checked receiver of §II-A: bounded
// back-search, STS polarity consistency at the candidate ToA, and an
// optional early-energy test against enlargement. It returns the chosen
// sample plus whether the measurement should be trusted.
func SecureToA(rx Signal, sts *STS, cfg SecureConfig) ToAResult {
	corr := Correlate(rx, sts)
	if len(corr) == 0 {
		return ToAResult{Sample: -1, Reason: "observation too short"}
	}
	peakIdx, peakVal := argmaxAbs(corr)
	if math.Abs(peakVal) < cfg.MinPeak {
		return ToAResult{Sample: peakIdx, Peak: peakVal, Reason: "no signal: peak below floor"}
	}

	// Bounded back-search for the true first path (multipath earliest
	// arrival), never beyond the plausibility window.
	first := peakIdx
	start := peakIdx - cfg.BackSearchWindow
	if start < 0 {
		start = 0
	}
	for k := start; k < peakIdx; k++ {
		if math.Abs(corr[k]) >= cfg.FirstPathThreshold*math.Abs(peakVal) {
			first = k
			break
		}
	}

	// STS consistency: per-pulse sign agreement at the chosen ToA.
	agree := Consistency(rx, sts, first)
	if agree < cfg.MinConsistency {
		return ToAResult{Sample: first, Peak: corr[first], Reason: fmt.Sprintf("sts consistency %.2f < %.2f", agree, cfg.MinConsistency)}
	}

	if cfg.EnlargementGuard {
		// Enlargement test (UWB-ED, ref [13]): the samples preceding
		// the accepted first path — up to one STS span back, minus the
		// multipath window — must look like channel noise. A
		// jam-and-replay enlargement attacker deposits jamming energy
		// there (it must mask the true arrival), and an overshadow
		// attacker leaves the intact legitimate signal there; both
		// raise the RMS well above the calibrated floor. The threshold
		// is absolute: scaling it with received power would let a
		// high-gain replay mask its own evidence.
		span := len(sts.Polarity) * ChipSpacing
		gStart := first - span
		if gStart < 0 {
			gStart = 0
		}
		gEnd := first - cfg.BackSearchWindow
		if n := gEnd - gStart; n >= 64 {
			rms := math.Sqrt(rx.Energy(gStart, gEnd) / float64(n))
			floor := cfg.ExpectedNoiseStd
			if floor <= 0 {
				floor = 0.25
			}
			if rms > 1.5*floor {
				return ToAResult{Sample: first, Peak: corr[first], Reason: fmt.Sprintf("pre-path energy rms %.3f over noise floor %.3f: enlargement suspected", rms, floor)}
			}
		}
		// Coherent early-energy check: an intact (unjammed) early
		// arrival also betrays itself by agreeing with the STS polarity
		// sequence far above the 50% a sidelobe or noise achieves.
		for k := 0; k < gEnd; k++ {
			if math.Abs(corr[k]) < 0.08 {
				continue // nothing resembling coherent energy
			}
			if Consistency(rx, sts, k) >= 0.70 {
				return ToAResult{Sample: first, Peak: corr[first], Reason: fmt.Sprintf("coherent early energy at sample %d: enlargement suspected", k)}
			}
		}
	}

	return ToAResult{Sample: first, Peak: corr[first], Accepted: true}
}

// Consistency returns the fraction of STS pulses whose received sample
// sign matches the expected polarity assuming the first pulse arrived at
// sample toa. Pulses whose sample lies outside rx count as disagreement.
func Consistency(rx Signal, sts *STS, toa int) float64 {
	if toa < 0 {
		return 0
	}
	agree := 0
	for i, p := range sts.Polarity {
		idx := toa + i*ChipSpacing
		if idx >= len(rx) {
			continue
		}
		v := rx[idx]
		if (v > 0 && p > 0) || (v < 0 && p < 0) {
			agree++
		}
	}
	return float64(agree) / float64(len(sts.Polarity))
}

func argmaxAbs(v []float64) (int, float64) {
	bestIdx, bestVal := 0, 0.0
	for i, x := range v {
		if math.Abs(x) > math.Abs(bestVal) {
			bestIdx, bestVal = i, x
		}
	}
	return bestIdx, bestVal
}
