package uwb

import (
	"fmt"
	"math"
	"sync"
	"unsafe"
)

// decPool recycles decimation buffers for Correlate calls that arrive
// without a scratch arena (one-shot callers, concurrent experiment
// cells). Buffers are length-adjusted by the borrower.
var decPool = sync.Pool{New: func() any { return new([]float64) }}

// packPool does the same for the per-call packed template offsets.
var packPool = sync.Pool{New: func() any { return new([]uint64) }}

// Correlate computes the normalized cross-correlation of the received
// signal with the STS template at every candidate offset. Entry k is the
// correlation assuming the first STS pulse arrived at sample k, divided
// by the number of pulses, so a clean unit-gain arrival scores ~1.0.
func Correlate(rx Signal, sts *STS) []float64 {
	return correlateScratch(nil, rx, sts)
}

// correlateScratch is Correlate with an optional buffer arena. The
// computation is restructured for the cache and the pipeline while
// staying bit-identical to correlateRef:
//
//   - rx is decimated per residue class mod ChipSpacing, turning the
//     stride-8 tap gather into sequential loads, and stored as two
//     planes — dec[q] = +v and dec[stride+q] = −v — so the ±1 template
//     multiply becomes an offset-addressed add (negation is exact, so
//     s += (−v) equals s += (−1)·v bit for bit);
//   - the template is flattened per call into packed byte offsets that
//     already select the plane (8i for +1, 8i+8·stride for −1), making
//     the inner loop one load and one add per pulse per window;
//   - adjacent output offsets are adjacent floats within a plane, so
//     blocks of windows accumulate together: 16 at a time in the SSE2
//     kernel (each vector lane owns one window), then 6-wide in pure
//     Go, then one at a time — independent add chains hide FP latency
//     and each template offset loaded once serves the whole block.
//
// Each output's summation order — template index ascending, then one
// division — is exactly the reference order, so every float rounds
// identically: vector lanes never combine across windows.
func correlateScratch(scr *scratch, rx Signal, sts *STS) []float64 {
	pol := sts.Polarity
	n := len(pol)
	maxOffset := len(rx) - (n-1)*ChipSpacing
	if maxOffset <= 0 {
		return nil
	}
	stride := (len(rx) + ChipSpacing - 1) / ChipSpacing
	var out, dec []float64
	var pack []uint64
	var pooled *[]float64
	var pooledPack *[]uint64
	if scr != nil {
		scr.corr = floatsFor(scr.corr, maxOffset)
		scr.dec = floatsFor(scr.dec, 2*stride)
		scr.pack = u64For(scr.pack, n/2)
		out, dec, pack = scr.corr, scr.dec, scr.pack
	} else {
		// Only out escapes (it is the return value); the decimation and
		// template-offset buffers are scratch, so scratchless callers
		// borrow them from pools instead of paying an allocation plus GC
		// churn per call.
		out = make([]float64, maxOffset)
		pooled = decPool.Get().(*[]float64)
		*pooled = floatsFor(*pooled, 2*stride)
		dec = *pooled
		defer decPool.Put(pooled)
		pooledPack = packPool.Get().(*[]uint64)
		*pooledPack = u64For(*pooledPack, n/2)
		pack = *pooledPack
		defer packPool.Put(pooledPack)
	}
	// Flatten the template into plane-selecting byte offsets, two per
	// word so one 64-bit load feeds two template steps. The offsets are
	// per call because the negated plane sits 8·stride bytes above the
	// positive one and stride depends on len(rx).
	delta := uint32(8 * stride)
	for k := range pack {
		a := uint32(16 * k)
		if pol[2*k] < 0 {
			a += delta
		}
		b := uint32(16*k + 8)
		if pol[2*k+1] < 0 {
			b += delta
		}
		pack[k] = uint64(a) | uint64(b)<<32
	}
	var tailOff uintptr
	if n&1 != 0 {
		o := uint32(8 * (n - 1))
		if pol[n-1] < 0 {
			o += delta
		}
		tailOff = uintptr(o)
	}
	nf := float64(n)
	// When n is a power of two its reciprocal is exact, and scaling by
	// it rounds identically to dividing by nf (both produce the same
	// real value), so the cheaper multiply stays bit-identical. For any
	// other n the code divides, as the reference does.
	inv, haveInv := 0.0, false
	if n&(n-1) == 0 {
		inv, haveInv = 1.0/nf, true
	}
	for r := 0; r < ChipSpacing && r < maxOffset; r++ {
		// Samples with index ≡ r (mod ChipSpacing), in order, stored as
		// two planes: dec[q] = rx[r+q·ChipSpacing], dec[stride+q] = −dec[q].
		// One residue is live at a time, so all eight share one buffer
		// (it stays hot in L1).
		cnt := (len(rx) - r + ChipSpacing - 1) / ChipSpacing
		pos := dec[:cnt]
		neg := dec[stride : stride+cnt]
		q := 0
		for j := r; j < len(rx); j += ChipSpacing {
			v := rx[j]
			pos[q] = v
			neg[q] = -v
			q++
		}
		// Outputs k = r, r+ChipSpacing, … are sliding ±template sums:
		// window q+c reads plane byte offsets pack[·] from base
		// dec[0]+8(q+c). The furthest float touched is (q+c)+(n−1) in a
		// plane, which is < cnt because the last output's last tap lies
		// inside rx (the maxOffset bound), so every access below stays
		// inside dec. Direct pointer loads give the bounds-check-free
		// form of pos/neg[q+c+i] that the range prover cannot reach for
		// data-dependent indices.
		nq := (maxOffset - r + ChipSpacing - 1) / ChipSpacing
		pBase := unsafe.Pointer(&dec[0])
		q = 0
		if haveCorrAsm {
			// 16 windows per call: each SSE2 lane accumulates one
			// window's sum in ascending template order, so rounding
			// matches the scalar loops exactly.
			var blk [16]float64
			for ; q+16 <= nq; q += 16 {
				corrBlock16(unsafe.Add(pBase, uintptr(8*q)), pack, tailOff, n, &blk)
				base := r + q*ChipSpacing
				if haveInv {
					for c, s := range blk {
						out[base+c*ChipSpacing] = s * inv
					}
				} else {
					for c, s := range blk {
						out[base+c*ChipSpacing] = s / nf
					}
				}
			}
		}
		for ; q+6 <= nq; q += 6 {
			p := unsafe.Add(pBase, uintptr(8*q))
			var s0, s1, s2, s3, s4, s5 float64
			// Two template steps per iteration from one packed 64-bit
			// load; each chain still adds its terms in ascending
			// template order, so rounding is unchanged.
			for _, pk := range pack {
				offA := uintptr(uint32(pk))
				offB := uintptr(pk >> 32)
				s0 += *(*float64)(unsafe.Add(p, offA))
				s0 += *(*float64)(unsafe.Add(p, offB))
				s1 += *(*float64)(unsafe.Add(p, offA+8))
				s1 += *(*float64)(unsafe.Add(p, offB+8))
				s2 += *(*float64)(unsafe.Add(p, offA+16))
				s2 += *(*float64)(unsafe.Add(p, offB+16))
				s3 += *(*float64)(unsafe.Add(p, offA+24))
				s3 += *(*float64)(unsafe.Add(p, offB+24))
				s4 += *(*float64)(unsafe.Add(p, offA+32))
				s4 += *(*float64)(unsafe.Add(p, offB+32))
				s5 += *(*float64)(unsafe.Add(p, offA+40))
				s5 += *(*float64)(unsafe.Add(p, offB+40))
			}
			if n&1 != 0 {
				s0 += *(*float64)(unsafe.Add(p, tailOff))
				s1 += *(*float64)(unsafe.Add(p, tailOff+8))
				s2 += *(*float64)(unsafe.Add(p, tailOff+16))
				s3 += *(*float64)(unsafe.Add(p, tailOff+24))
				s4 += *(*float64)(unsafe.Add(p, tailOff+32))
				s5 += *(*float64)(unsafe.Add(p, tailOff+40))
			}
			base := r + q*ChipSpacing
			if haveInv {
				out[base] = s0 * inv
				out[base+ChipSpacing] = s1 * inv
				out[base+2*ChipSpacing] = s2 * inv
				out[base+3*ChipSpacing] = s3 * inv
				out[base+4*ChipSpacing] = s4 * inv
				out[base+5*ChipSpacing] = s5 * inv
			} else {
				out[base] = s0 / nf
				out[base+ChipSpacing] = s1 / nf
				out[base+2*ChipSpacing] = s2 / nf
				out[base+3*ChipSpacing] = s3 / nf
				out[base+4*ChipSpacing] = s4 / nf
				out[base+5*ChipSpacing] = s5 / nf
			}
		}
		for ; q < nq; q++ {
			p := unsafe.Add(pBase, uintptr(8*q))
			var sum float64
			for _, pk := range pack {
				sum += *(*float64)(unsafe.Add(p, uintptr(uint32(pk))))
				sum += *(*float64)(unsafe.Add(p, uintptr(pk>>32)))
			}
			if n&1 != 0 {
				sum += *(*float64)(unsafe.Add(p, tailOff))
			}
			if haveInv {
				out[r+q*ChipSpacing] = sum * inv
			} else {
				out[r+q*ChipSpacing] = sum / nf
			}
		}
	}
	return out
}

// correlateRef is the original correlator, kept verbatim as the
// reference implementation the property tests pin correlateScratch
// against bit-for-bit.
func correlateRef(rx Signal, sts *STS) []float64 {
	n := len(sts.Polarity)
	maxOffset := len(rx) - (n-1)*ChipSpacing
	if maxOffset <= 0 {
		return nil
	}
	out := make([]float64, maxOffset)
	for k := 0; k < maxOffset; k++ {
		sum := 0.0
		for i, p := range sts.Polarity {
			sum += float64(p) * rx[k+i*ChipSpacing]
		}
		out[k] = sum / float64(n)
	}
	return out
}

// ToAResult is the outcome of a time-of-arrival estimation.
type ToAResult struct {
	// Sample is the estimated arrival sample of the first STS pulse.
	Sample int
	// Peak is the normalized correlation value at Sample.
	Peak float64
	// Accepted reports whether the receiver's integrity checks (if
	// any) passed. A naive receiver always accepts.
	Accepted bool
	// Reason is empty when Accepted, otherwise a short diagnosis.
	Reason string
}

// NaiveToA implements the insecure first-path search the paper warns
// about: it finds the global correlation maximum, then walks backwards
// without bound accepting any earlier sample whose correlation exceeds
// threshold·peak as the "first path". An attacker who injects even a
// modest ghost peak in front of the legitimate arrival shortens the
// measured distance. It performs no validity check on the result.
func NaiveToA(rx Signal, sts *STS, threshold float64) ToAResult {
	return naiveToA(nil, rx, sts, threshold)
}

func naiveToA(scr *scratch, rx Signal, sts *STS, threshold float64) ToAResult {
	corr := correlateScratch(scr, rx, sts)
	if len(corr) == 0 {
		return ToAResult{Sample: -1}
	}
	peakIdx, peakVal := argmaxAbs(corr)
	first := peakIdx
	for k := 0; k < peakIdx; k++ {
		if math.Abs(corr[k]) >= threshold*math.Abs(peakVal) {
			first = k
			break
		}
	}
	return ToAResult{Sample: first, Peak: corr[first], Accepted: true}
}

// SecureConfig parametrizes the integrity-checked receiver.
type SecureConfig struct {
	// BackSearchWindow bounds, in samples, how far before the strongest
	// path the receiver will accept an earlier "first path". 802.15.4z
	// implementations bound this window to the channel's plausible
	// excess delay (a few ns) precisely to defeat ghost peaks far in
	// front of the real signal.
	BackSearchWindow int
	// FirstPathThreshold is the fraction of the main peak an earlier
	// sample must reach to be considered a first path.
	FirstPathThreshold float64
	// MinPeak is the minimum normalized correlation for a detection to
	// be considered a signal at all.
	MinPeak float64
	// MinConsistency is the minimum per-pulse polarity agreement rate
	// at the chosen ToA (the STS consistency check): for each pulse,
	// the sign of the received sample must match the expected STS
	// polarity. A true arrival agrees on nearly all pulses; a random
	// ghost peak agrees on about half.
	MinConsistency float64
	// EnlargementGuard, when true, enables the UWB-ED-style energy test
	// for distance enlargement: the region before the accepted first
	// path must contain only channel noise. A jam-and-replay attacker
	// necessarily deposits jamming energy (or leaves the intact
	// legitimate signal) in that region.
	EnlargementGuard bool
	// ExpectedNoiseStd is the receiver's calibrated noise floor used by
	// the enlargement guard; 0 lets the caller (Session) fill it from
	// the channel model, as a real receiver's AGC/noise estimator does.
	ExpectedNoiseStd float64
}

// DefaultSecureConfig returns the configuration used by the paper
// experiments: a 16-sample (8 ns) back-search window, 40% first-path
// threshold, 0.25 minimum peak, 85% STS consistency, enlargement guard
// on.
func DefaultSecureConfig() SecureConfig {
	return SecureConfig{
		BackSearchWindow:   16,
		FirstPathThreshold: 0.4,
		MinPeak:            0.25,
		MinConsistency:     0.85,
		EnlargementGuard:   true,
	}
}

// SecureToA implements the integrity-checked receiver of §II-A: bounded
// back-search, STS polarity consistency at the candidate ToA, and an
// optional early-energy test against enlargement. It returns the chosen
// sample plus whether the measurement should be trusted.
func SecureToA(rx Signal, sts *STS, cfg SecureConfig) ToAResult {
	return secureToA(nil, rx, sts, cfg)
}

func secureToA(scr *scratch, rx Signal, sts *STS, cfg SecureConfig) ToAResult {
	corr := correlateScratch(scr, rx, sts)
	if len(corr) == 0 {
		return ToAResult{Sample: -1, Reason: "observation too short"}
	}
	peakIdx, peakVal := argmaxAbs(corr)
	if math.Abs(peakVal) < cfg.MinPeak {
		return ToAResult{Sample: peakIdx, Peak: peakVal, Reason: "no signal: peak below floor"}
	}

	// Bounded back-search for the true first path (multipath earliest
	// arrival), never beyond the plausibility window.
	first := peakIdx
	start := peakIdx - cfg.BackSearchWindow
	if start < 0 {
		start = 0
	}
	for k := start; k < peakIdx; k++ {
		if math.Abs(corr[k]) >= cfg.FirstPathThreshold*math.Abs(peakVal) {
			first = k
			break
		}
	}

	// STS consistency: per-pulse sign agreement at the chosen ToA.
	agree := Consistency(rx, sts, first)
	if agree < cfg.MinConsistency {
		return ToAResult{Sample: first, Peak: corr[first], Reason: fmt.Sprintf("sts consistency %.2f < %.2f", agree, cfg.MinConsistency)}
	}

	if cfg.EnlargementGuard {
		// Enlargement test (UWB-ED, ref [13]): the samples preceding
		// the accepted first path — up to one STS span back, minus the
		// multipath window — must look like channel noise. A
		// jam-and-replay enlargement attacker deposits jamming energy
		// there (it must mask the true arrival), and an overshadow
		// attacker leaves the intact legitimate signal there; both
		// raise the RMS well above the calibrated floor. The threshold
		// is absolute: scaling it with received power would let a
		// high-gain replay mask its own evidence.
		span := len(sts.Polarity) * ChipSpacing
		gStart := first - span
		if gStart < 0 {
			gStart = 0
		}
		gEnd := first - cfg.BackSearchWindow
		if n := gEnd - gStart; n >= 64 {
			rms := math.Sqrt(rx.Energy(gStart, gEnd) / float64(n))
			floor := cfg.ExpectedNoiseStd
			if floor <= 0 {
				floor = 0.25
			}
			if rms > 1.5*floor {
				return ToAResult{Sample: first, Peak: corr[first], Reason: fmt.Sprintf("pre-path energy rms %.3f over noise floor %.3f: enlargement suspected", rms, floor)}
			}
		}
		// Coherent early-energy check: an intact (unjammed) early
		// arrival also betrays itself by agreeing with the STS polarity
		// sequence far above the 50% a sidelobe or noise achieves.
		for k := 0; k < gEnd; k++ {
			if math.Abs(corr[k]) < 0.08 {
				continue // nothing resembling coherent energy
			}
			if Consistency(rx, sts, k) >= 0.70 {
				return ToAResult{Sample: first, Peak: corr[first], Reason: fmt.Sprintf("coherent early energy at sample %d: enlargement suspected", k)}
			}
		}
	}

	return ToAResult{Sample: first, Peak: corr[first], Accepted: true}
}

// Consistency returns the fraction of STS pulses whose received sample
// sign matches the expected polarity assuming the first pulse arrived at
// sample toa. Pulses whose sample lies outside rx count as disagreement.
func Consistency(rx Signal, sts *STS, toa int) float64 {
	if toa < 0 {
		return 0
	}
	agree := 0
	idx := toa
	for _, p := range sts.Template() {
		// Pulse positions only grow, so the first out-of-range pulse
		// ends the scan; the remainder count as disagreement, exactly
		// as the per-pulse bounds check did.
		if idx >= len(rx) {
			break
		}
		v := rx[idx]
		// v·p > 0 holds exactly when the signs agree and v is neither
		// zero nor NaN (p is exactly ±1, so the product cannot round),
		// i.e. the same predicate as (v>0 && p>0) || (v<0 && p<0) — but
		// it compiles to a single ordered compare feeding a flag-set
		// instead of two data-dependent branches, which matters because
		// sample signs are a coin flip at non-arrival offsets and defeat
		// the branch predictor.
		inc := 0
		if v*p > 0 {
			inc = 1
		}
		agree += inc
		idx += ChipSpacing
	}
	return float64(agree) / float64(len(sts.Polarity))
}

func argmaxAbs(v []float64) (int, float64) {
	bestIdx, bestVal := 0, 0.0
	for i, x := range v {
		if math.Abs(x) > math.Abs(bestVal) {
			bestIdx, bestVal = i, x
		}
	}
	return bestIdx, bestVal
}
