package core

import (
	"strings"
	"testing"
)

func TestRegistryHasAllPaperArtefacts(t *testing.T) {
	t.Parallel()
	want := []string{"fig1", "fig2", "fig3", "tab1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"exp-ca", "exp-collab", "exp-ids", "exp-access", "exp-ptp", "exp-v2x", "exp-ota", "exp-tara", "exp-vehicle", "exp-zc", "exp-stealth",
		"ablate-mac", "ablate-fv", "ablate-sts", "ablate-canal", "ablate-k", "ablate-ids", "ablate-scale"}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Title == "" || e.Source == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	t.Parallel()
	if _, err := RunExperiment("fig99", 1); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

// TestAllExperimentsRun executes every experiment once and checks for
// the landmark strings that make the output a faithful regeneration.
func TestAllExperimentsRun(t *testing.T) {
	t.Parallel()
	landmarks := map[string][]string{
		"fig1":         {"physical", "collaboration", "attack paths", "synergy"},
		"fig2":         {"HRP", "LRP", "ghost-peak", "ED/LC"},
		"fig3":         {"zone controller", "baseline"},
		"tab1":         {"SECOC", "(D)TLS", "IPsec", "MACsec", "CANsec"},
		"fig4":         {"S1", "baseline"},
		"fig5":         {"S2-e2e", "S2-p2p"},
		"fig6":         {"S3", "S2-e2e", "S1"},
		"fig7":         {"brake-ctrl", "RELOCATE", "ROLLBACK"},
		"fig8":         {"heap-dump", "BREACH", "least-privilege"},
		"fig9":         {"level", "cascade", "security owner"},
		"exp-ca":       {"naive", "verified", "ghost"},
		"exp-collab":   {"insider", "redundancy", "cooperative", "self-interested"},
		"exp-ids":      {"isolate", "alert"},
		"exp-access":   {"GRANTED", "denied", "threshold"},
		"exp-ptp":      {"delay attack", "PTPsec", "localized"},
		"exp-v2x":      {"pseudonym", "revoked", "linkage"},
		"exp-ota":      {"forged", "downgrade", "ROLLBACK"},
		"exp-tara":     {"risk", "feasibility", "reduce (mandatory)", "aggregate"},
		"exp-vehicle":  {"cross-zone", "forgeries accepted: 0"},
		"exp-zc":       {"S2-p2p", "keyless", "plaintext"},
		"exp-stealth":  {"bulk", "low-and-slow", "incident"},
		"ablate-ids":   {"radius", "false-positive", "miss"},
		"ablate-scale": {"endpoints", "keys@ZC", "S2-p2p", "256"},
		"ablate-mac":   {"24", "128"},
		"ablate-fv":    {"window"},
		"ablate-sts":   {"pulses", "1024"},
		"ablate-canal": {"segments"},
		"ablate-k":     {"fakes-accepted"},
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(NewRunContext(42))
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(out) < 80 {
				t.Fatalf("%s output suspiciously short:\n%s", e.ID, out)
			}
			for _, lm := range landmarks[e.ID] {
				if !strings.Contains(out, lm) {
					t.Errorf("%s output missing %q:\n%s", e.ID, lm, out)
				}
			}
		})
	}
}

// TestExperimentsDeterministic ensures the same seed reproduces the same
// report byte for byte.
func TestExperimentsDeterministic(t *testing.T) {
	t.Parallel()
	for _, id := range []string{"fig2", "fig6", "fig8", "exp-collab"} {
		a, err := RunExperiment(id, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunExperiment(id, 7)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s not deterministic under fixed seed", id)
		}
	}
}

// TestKeyExperimentClaims pins the qualitative claims the paper makes:
// who wins, and roughly by what margin.
func TestKeyExperimentClaims(t *testing.T) {
	t.Parallel()
	out, err := RunExperiment("fig8", 42)
	if err != nil {
		t.Fatal(err)
	}
	// The undefended chain must breach and the all-defences row must not.
	if !strings.Contains(out, "— (breached)") {
		t.Error("fig8: incident configuration did not breach")
	}
	if !strings.Contains(out, "directory-enumeration") {
		t.Error("fig8: enumeration defence row missing")
	}

	out, err = RunExperiment("fig2", 42)
	if err != nil {
		t.Fatal(err)
	}
	// Secure receiver rows should show 0-ish manipulation; naive ghost
	// row should show a majority. Landmarks suffice; the detailed
	// statistics are covered by package uwb tests.
	if !strings.Contains(out, "secure") || !strings.Contains(out, "naive") {
		t.Error("fig2: missing receiver rows")
	}
}
