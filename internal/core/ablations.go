package core

import (
	"fmt"
	"math"
	"strings"

	"autosec/internal/canal"
	"autosec/internal/canbus"
	"autosec/internal/collab"
	"autosec/internal/ethernet"
	"autosec/internal/secchan"
	"autosec/internal/secchan/suites"
	"autosec/internal/secoc"
	"autosec/internal/sim"
	"autosec/internal/uwb"
	"autosec/internal/world"
)

// RunAblateMAC sweeps SECOC MAC truncation: wire overhead (measured)
// against brute-force forgery probability (analytic) and observed
// forgeries under a budget of random attempts.
func RunAblateMAC(rc *RunContext) (string, error) {
	rng := rc.RNG()
	key := make([]byte, 16)
	rng.Bytes(key)

	entry, err := suites.Registry().Find("SECOC")
	if err != nil {
		return "", err
	}

	tb := rc.Table("ablation — SECOC MAC truncation",
		"mac-bits", "overhead-B", "P(forge/attempt)", "forgeries-in-100k")
	for _, bits := range []int{24, 32, 64, 128} {
		sender, err := entry.New(secchan.Params{Key: key, MACBits: bits})
		if err != nil {
			return "", err
		}
		pdu, err := sender.Protect([]byte{1, 2, 3, 4})
		if err != nil {
			return "", err
		}
		// Empirical forgery attempts: random MACs against a receiver.
		// Only feasible to observe successes at 24 bits and below; the
		// expected count documents why even 24 bits holds per-attempt.
		// The attempt budget is split into a fixed number of replicate
		// chunks (fixed so the output never depends on the machine),
		// each drawing from its own serially pre-forked RNG against its
		// own receiver; the forgery tally folds over chunks in order.
		attempts := 100000
		forged := 0
		if bits <= 24 {
			const chunks = 16
			base := append([]byte(nil), pdu...)
			perChunk := make([]int, chunks)
			err := rc.Replicates(chunks, rng, func(c int, r *sim.RNG) error {
				recv, err := entry.New(secchan.Params{Key: key, MACBits: bits})
				if err != nil {
					return err
				}
				n := attempts / chunks
				if c < attempts%chunks {
					n++
				}
				// Forgeries go through the batched verify path: each
				// burst's tags are drawn first, in the serial draw order
				// (Verify consumes no randomness, so the RNG stream is
				// unchanged), then verified in one VerifyBatch call,
				// which SECOC turns into pipelined CMAC kernel calls.
				const burst = 256
				forgeries := make([][]byte, burst)
				for i := range forgeries {
					forgeries[i] = append([]byte(nil), base...)
				}
				var verdicts []secchan.Verdict
				for i := 0; i < n; i += burst {
					m := burst
					if n-i < m {
						m = n - i
					}
					for j := 0; j < m; j++ {
						r.Bytes(forgeries[j][len(base)-bits/8:])
					}
					verdicts = secchan.VerifyBatch(recv, forgeries[:m], verdicts)
					for j := range verdicts {
						if verdicts[j].Err == nil {
							perChunk[c]++
						}
					}
				}
				return nil
			})
			if err != nil {
				return "", err
			}
			for _, n := range perChunk {
				forged += n
			}
		}
		tb.AddRow(bits, len(pdu)-4, fmt.Sprintf("2^-%d (%.2e)", bits, math.Pow(2, -float64(bits))), forged)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nthe freshness window multiplies attacker attempts per counter value; 24-bit truncation is\n")
	b.WriteString("the classic-CAN compromise (fits 8-byte frames), larger buses afford 64+.\n")
	return b.String(), nil
}

// RunAblateFV sweeps the SECOC freshness acceptance window against
// message-loss tolerance: too small and honest traffic desynchronizes,
// larger windows only widen the replay search space.
func RunAblateFV(rc *RunContext) (string, error) {
	rng := rc.RNG()
	key := make([]byte, 16)
	rng.Bytes(key)

	const messages = 400
	tb := rc.Table("ablation — freshness window vs loss tolerance (400 msgs, 20% loss)",
		"window", "delivered-accepted", "desync-rejects", "replays-accepted")
	for _, window := range []uint64{4, 16, 64, 256} {
		cfg := secoc.Config{DataID: 1, MACBits: 32, FreshnessBits: 16, AcceptWindow: window}
		sender, err := secoc.NewSender(cfg, key)
		if err != nil {
			return "", err
		}
		recv, err := secoc.NewReceiver(cfg, key)
		if err != nil {
			return "", err
		}
		accepted, rejects, replayOK := 0, 0, 0
		var captured [][]byte
		for i := 0; i < messages; i++ {
			pdu, err := sender.Protect([]byte{byte(i)})
			if err != nil {
				return "", err
			}
			if rng.Bool(0.2) {
				continue // frame lost on the bus
			}
			captured = append(captured, pdu)
			if _, err := recv.Verify(pdu); err == nil {
				accepted++
			} else {
				rejects++
			}
		}
		for _, pdu := range captured {
			if _, err := recv.Verify(pdu); err == nil {
				replayOK++
			}
		}
		tb.AddRow(window, accepted, rejects, replayOK)
	}
	return tb.String(), nil
}

// RunAblateSTS sweeps the HRP STS length against ghost-peak success on
// the naive receiver: the random-walk ghost correlation shrinks as
// 1/√pulses, so longer sequences harden even naive processing.
func RunAblateSTS(rc *RunContext) (string, error) {
	rng := rc.RNG()
	key := []byte("ablate-sts-key!!")
	const trials = 30
	tb := rc.Table("ablation — STS length vs ghost-peak distance reduction (naive receiver)",
		"pulses", "reduction-success", "secure-receiver-success")
	// Each trial is one replicate on its own serially pre-forked RNG:
	// it measures the naive and the secure receiver back to back with
	// replicate-local sessions (the scratch arena is reused between the
	// two measurements), and the success counters fold over the joined
	// outcomes in trial order. The attacker is stateless and shared.
	att := &uwb.GhostPeakAttacker{AdvanceSamples: 200, Power: 4}
	for _, pulses := range []int{32, 64, 128, 256, 1024} {
		type outcome struct{ naive, secure bool }
		outs := make([]outcome, trials)
		err := rc.Replicates(trials, rng, func(i int, r *sim.RNG) error {
			naive := uwb.Session{
				Key: key, Pulses: pulses, Session: uint32(i),
				Channel: uwb.Channel{DistanceM: 60, NoiseStd: 0.2},
				Secure:  false, NaiveThreshold: 0.3,
			}
			m, err := naive.Measure(att, r)
			if err != nil {
				return err
			}
			outs[i].naive = m.Accepted && m.ErrorM() < -5
			secure := uwb.Session{
				Key: key, Pulses: pulses, Session: uint32(i),
				Channel: uwb.Channel{DistanceM: 60, NoiseStd: 0.2},
				Secure:  true, Config: uwb.DefaultSecureConfig(),
				NaiveThreshold: 0.3,
			}
			m, err = secure.Measure(att, r)
			if err != nil {
				return err
			}
			outs[i].secure = m.Accepted && m.ErrorM() < -5
			return nil
		})
		if err != nil {
			return "", err
		}
		succNaive, succSecure := 0, 0
		for _, o := range outs {
			if o.naive {
				succNaive++
			}
			if o.secure {
				succSecure++
			}
		}
		tb.AddRow(pulses, fmt.Sprintf("%d/%d", succNaive, trials), fmt.Sprintf("%d/%d", succSecure, trials))
	}
	return tb.String(), nil
}

// RunAblateCANAL sweeps the CANAL segment payload size: smaller segments
// mean more per-segment headers and more CAN overhead per tunnelled
// Ethernet frame.
func RunAblateCANAL(rc *RunContext) (string, error) {
	frame := &ethernet.Frame{
		Dst: ethernet.MAC{2, 0, 0, 0, 0, 1}, Src: ethernet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: ethernet.EtherTypeApp, Payload: make([]byte, 1400),
	}
	tb := rc.Table("ablation — CANAL segment size for a 1400-B Ethernet frame over CAN XL",
		"segment-payload-B", "segments", "tunnel-overhead-B", "wire-bits")
	for _, size := range []int{0 /* = max */, 1024, 256, 64, 32} {
		a := canal.NewAdapter(1, canbus.XL, 0x100)
		a.MaxSegmentPayload = size
		segs, err := a.Segment(frame)
		if err != nil {
			return "", err
		}
		wireBits := 0
		for _, s := range segs {
			wireBits += s.WireBits()
		}
		oh, err := a.SegmentOverheadBytes(len(frame.Marshal()))
		if err != nil {
			return "", err
		}
		label := fmt.Sprint(size)
		if size == 0 {
			label = "2040 (max)"
		}
		tb.AddRow(label, len(segs), oh, wireBits)
	}
	return tb.String(), nil
}

// RunAblateRedundancy sweeps the corroboration requirement k against an
// insider fabricator: k=1 accepts everything an authenticated member
// says; k≥2 filters single-witness fabrications.
func RunAblateRedundancy(rc *RunContext) (string, error) {
	rng := rc.RNG()
	tb := rc.Table("ablation — redundancy k vs insider fabrication (20 rounds)",
		"k", "fakes-accepted", "real-accepted", "missed-real")
	for _, k := range []int{0, 1, 2, 3} {
		// Each round is an independent replicate (own world, members,
		// and serially pre-forked RNG); the per-k tallies fold over the
		// joined outcomes in round order.
		outs := make([]collab.FusionOutcome, 20)
		err := rc.Replicates(len(outs), rng, func(round int, r *sim.RNG) error {
			w := world.New()
			members := map[string]*collab.Participant{}
			for i, x := range []float64{0, 20, 40, 60} {
				id := string(rune('a' + i))
				if err := w.Add(&world.Actor{ID: id, Pos: world.Vec2{X: x}, Radius: 1}); err != nil {
					return err
				}
				members[id] = &collab.Participant{ID: id, SensorRange: 50, NoiseStd: 0.1}
			}
			if err := w.Add(&world.Actor{ID: "ped", Pos: world.Vec2{X: 30, Y: 4}, Radius: 0.4}); err != nil {
				return err
			}
			fake := world.Vec2{X: 35}
			members["b"].Fabricate = &fake
			var msgs []collab.Message
			for _, id := range []string{"a", "b", "c", "d"} {
				msgs = append(msgs, members[id].Share(w, r))
			}
			outs[round] = collab.Fuse(w, msgs, members, collab.FusionConfig{RequireAuth: true, RedundancyK: k})
			return nil
		})
		if err != nil {
			return "", err
		}
		fakes, real, missed := 0, 0, 0
		for _, out := range outs {
			fakes += out.FakeCount
			real += out.RealCount
			missed += out.MissedReal
		}
		tb.AddRow(k, fakes, real, missed)
	}
	return tb.String(), nil
}
