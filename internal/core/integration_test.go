package core

import (
	"fmt"
	"testing"

	"autosec/internal/collab"
	"autosec/internal/sim"
	"autosec/internal/v2x"
	"autosec/internal/world"
)

// TestCrossLayerMisbehaviourToRevocation exercises the full §VII-B
// pipeline across packages: an insider fabricates objects in
// collaborative perception (collab), the redundancy-based trust tracker
// identifies it, the V2X authority resolves the pseudonym to the
// enrolled vehicle and revokes its whole pseudonym batch (v2x), after
// which the fleet rejects all its messages — the paper's "comprehensive
// intrusion detection" requirement realized end to end.
func TestCrossLayerMisbehaviourToRevocation(t *testing.T) {
	t.Parallel()
	rng := sim.NewRNG(99)

	// V2X identity layer.
	authSeed := make([]byte, 32)
	rng.Bytes(authSeed)
	authority, err := v2x.NewAuthority(authSeed)
	if err != nil {
		t.Fatal(err)
	}
	verifier := &v2x.Verifier{Root: authority.PublicKey(), IsRevoked: authority.Revoked, MaxAge: 60}

	// Fleet of four, each with a pseudonym.
	w := world.New()
	members := map[string]*collab.Participant{}
	pseudonyms := map[string]*v2x.Pseudonym{}
	for i, x := range []float64{0, 20, 40, 60} {
		id := fmt.Sprintf("av-%d", i+1)
		if err := w.Add(&world.Actor{ID: id, Pos: world.Vec2{X: x}, Radius: 1}); err != nil {
			t.Fatal(err)
		}
		members[id] = &collab.Participant{ID: id, SensorRange: 50, NoiseStd: 0.1}
		authority.Enroll(id)
		ps, err := authority.IssuePseudonyms(id, 1, 0, 3600, rng)
		if err != nil {
			t.Fatal(err)
		}
		pseudonyms[id] = ps[0]
	}
	if err := w.Add(&world.Actor{ID: "ped", Pos: world.Vec2{X: 30, Y: 4}, Radius: 0.4}); err != nil {
		t.Fatal(err)
	}

	// av-2 goes rogue: fabricates a ghost while holding valid
	// credentials.
	fake := world.Vec2{X: 35}
	members["av-2"].Fabricate = &fake

	// Rounds: members broadcast signed object lists; receivers verify
	// the envelope (v2x) and fuse with redundancy (collab); the trust
	// tracker accumulates misbehaviour evidence.
	tracker := collab.NewTrustTracker()
	cfg := collab.FusionConfig{RequireAuth: true, RedundancyK: 2}
	ts := int64(1)
	round := func() []collab.Message {
		var msgs []collab.Message
		for id, p := range members {
			if tracker.Excluded(id) {
				continue
			}
			env, err := v2x.Sign(pseudonyms[id], w.Get(id).Pos, 0, ts, []byte("object-list"))
			if err != nil {
				t.Fatal(err)
			}
			authenticated := verifier.Verify(env, ts) == nil
			m := p.Share(w, rng)
			m.Authenticated = authenticated
			msgs = append(msgs, m)
		}
		ts++
		return msgs
	}

	rounds := 0
	for !tracker.Excluded("av-2") && rounds < 50 {
		msgs := round()
		tracker.Observe(w, msgs, members, cfg)
		rounds++
	}
	if rounds >= 50 {
		t.Fatal("trust tracker never excluded the fabricator")
	}

	// Collaboration layer hands the verdict to the identity layer:
	// resolve the fabricator's pseudonym, revoke the vehicle.
	vehicle, err := authority.Resolve(pseudonyms["av-2"].ID)
	if err != nil {
		t.Fatal(err)
	}
	if vehicle != "av-2" {
		t.Fatalf("pseudonym resolved to %q", vehicle)
	}
	if n := authority.RevokeVehicle(vehicle); n == 0 {
		t.Fatal("no pseudonyms revoked")
	}

	// From now on the rogue's envelope fails verification fleet-wide.
	env, err := v2x.Sign(pseudonyms["av-2"], w.Get("av-2").Pos, 0, ts, []byte("object-list"))
	if err != nil {
		t.Fatal(err)
	}
	if verifier.Verify(env, ts) == nil {
		t.Error("revoked vehicle's message still verifies")
	}
	// And honest members are untouched.
	envOK, err := v2x.Sign(pseudonyms["av-1"], w.Get("av-1").Pos, 0, ts, []byte("object-list"))
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.Verify(envOK, ts); err != nil {
		t.Errorf("honest member's message rejected: %v", err)
	}

	// Final fusion without the rogue: the pedestrian is still seen, no
	// fakes.
	var msgs []collab.Message
	for id, p := range members {
		if id == "av-2" {
			continue // isolated
		}
		m := p.Share(w, rng)
		msgs = append(msgs, m)
	}
	out := collab.Fuse(w, msgs, members, cfg)
	if out.FakeCount != 0 {
		t.Errorf("%d fakes after isolation", out.FakeCount)
	}
	found := false
	for _, ob := range out.Accepted {
		if ob.TruthID == "ped" {
			found = true
		}
	}
	if !found {
		t.Error("pedestrian lost after isolating the rogue")
	}
}
