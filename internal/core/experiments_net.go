package core

import (
	"fmt"
	"strings"

	"autosec/internal/ivn"
	"autosec/internal/sim"
)

// ivnCfg returns the standard Fig. 4–6 workload wired to the run's
// tracer, so scenario kernels contribute to the structured trace.
func ivnCfg(rc *RunContext) ivn.Config {
	cfg := ivn.DefaultConfig(rc.Seed)
	cfg.Tracer = rc.Tracer
	return cfg
}

func scenarioRow(tb *sim.Table, r ivn.Result) {
	tb.AddRow(r.Scenario,
		fmt.Sprintf("%d/%d", r.Delivered, r.Sent),
		r.LatencyUs.P50,
		r.OverheadRatio,
		r.KeysAtZC,
		r.CryptoOpsAtZC,
		fmt.Sprintf("%d/%d", r.ForgeriesAccepted, r.ForgeriesAttempted),
		fmt.Sprintf("%d/%d", r.ReplaysAccepted, r.ReplaysAttempted))
}

// RunFig3 regenerates Fig. 3: the zonal topology inventory and the
// undefended baseline, showing the masquerade vulnerability the later
// scenarios fix.
func RunFig3(rc *RunContext) (string, error) {
	var b strings.Builder
	b.WriteString("Fig. 3 — simplified IVN model\n")
	b.WriteString("  central computing (CC)\n")
	b.WriteString("  ├─ ETH 1 Gbit/s ── zone controller L ── CAN ─── {ecu-1, attacker}\n")
	b.WriteString("  └─ ETH 1 Gbit/s ── zone controller R ── 10B-T1S {endpoint, attacker}\n\n")

	res, err := ivn.RunBaseline(ivnCfg(rc))
	if err != nil {
		return "", err
	}
	tb := scenarioTable(rc, "baseline (no security stack)")
	scenarioRow(tb, res)
	b.WriteString(tb.String())
	b.WriteString("\nwithout authentication every masquerade and replay is accepted: the motivation for Table I.\n")
	return b.String(), nil
}

// RunExpVehicle runs the combined Fig. 3 vehicle: both zones live on one
// kernel, three concurrent protected flows (including a cross-zone flow
// routed through the central computer), and attackers on both buses.
func RunExpVehicle(rc *RunContext) (string, error) {
	// Three classic CAN frames per period (~240 µs each on the wire)
	// need ≥ ~720 µs of bus time; a 1.5 ms period keeps the zone-L bus
	// at ~50 % load so latencies reflect path length, not queueing.
	cfg := ivn.Config{Seed: rc.Seed, Messages: 100, PeriodUs: 1500, PayloadBytes: 4, Forgeries: 40, Tracer: rc.Tracer}
	res, err := ivn.RunFullVehicle(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig. 3 (integrated) — full vehicle, both zones concurrently\n\n")
	b.WriteString(res.String())
	if res.ForgeriesAttempted > 0 {
		rc.Metric("forgeries accepted", float64(res.ForgeriesAccepted)/float64(res.ForgeriesAttempted))
	}
	b.WriteString("\nthe cross-zone flow (CAN → CC → 10BASE-T1S) keeps SECOC end-to-end across three media;\n")
	b.WriteString("simultaneous masquerade campaigns on both buses are fully rejected.\n")
	return b.String(), nil
}

// RunExpZCCompromise probes what an attacker who owns the zone
// controller can do under each scenario's key layout — the executable
// form of the paper's S1/S2 key-placement discussion.
func RunExpZCCompromise(rc *RunContext) (string, error) {
	results, err := ivn.RunZCCompromise()
	if err != nil {
		return "", err
	}
	tb := rc.Table("§III-A — capabilities of a compromised zone controller",
		"scenario", "keys@ZC", "reads-plaintext", "forges-accepted-msgs")
	for _, r := range results {
		tb.AddRow(r.Scenario, r.KeysAtZC, r.PlaintextVisible, r.ForgeryAccepted)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nS1 leaks content (SECOC is authentication-only) but holds integrity; S2-p2p hands the\n")
	b.WriteString("attacker both — the concrete reason the paper favours keyless intermediates (S2-e2e, S3).\n")
	return b.String(), nil
}

// RunFig4 regenerates Fig. 4 (scenario S1).
func RunFig4(rc *RunContext) (string, error) {
	base, err := ivn.RunBaseline(ivnCfg(rc))
	if err != nil {
		return "", err
	}
	s1, err := ivn.RunS1(ivnCfg(rc))
	if err != nil {
		return "", err
	}
	tb := scenarioTable(rc, "Fig. 4 — S1: SECOC end-to-end over CAN + MACsec on the ETH hop")
	scenarioRow(tb, base)
	scenarioRow(tb, s1)
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nS1 costs (as the paper lists): AUTOSAR stack processing at the zone controller, authentication-only\n")
	b.WriteString("protection on the CAN leg, and session-key storage in the zone controller.\n")
	return b.String(), nil
}

// RunFig5 regenerates Fig. 5 (scenario S2, both variants).
func RunFig5(rc *RunContext) (string, error) {
	e2e, err := ivn.RunS2(ivnCfg(rc), ivn.S2EndToEnd)
	if err != nil {
		return "", err
	}
	p2p, err := ivn.RunS2(ivnCfg(rc), ivn.S2PointToPoint)
	if err != nil {
		return "", err
	}
	tb := scenarioTable(rc, "Fig. 5 — S2: MACsec on a homogeneous Ethernet network")
	scenarioRow(tb, e2e)
	scenarioRow(tb, p2p)
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nend-to-end (①) keeps the zone controller keyless and free of security processing, but the\n")
	b.WriteString("intermediate cannot modify protected header information; point-to-point (②) doubles the\n")
	b.WriteString("crypto work and stores a key per hop at the zone controller.\n")
	return b.String(), nil
}

// RunFig6 regenerates Fig. 6 (scenario S3) and the three-way comparison.
func RunFig6(rc *RunContext) (string, error) {
	results, err := ivn.RunAll(ivnCfg(rc))
	if err != nil {
		return "", err
	}
	tb := scenarioTable(rc, "Fig. 6 — S3: CANAL tunnels MACsec end-to-end over CAN XL (full comparison)")
	for _, r := range results {
		scenarioRow(tb, r)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nS3 reaches CAN endpoints with Ethernet-layer security and MKA key agreement end-to-end:\n")
	b.WriteString("no keys and no security processing at the zone controller, at the cost of CANAL segmentation\n")
	b.WriteString("overhead on the CAN XL leg.\n")
	return b.String(), nil
}
