package core

// DefaultCatalog builds the threat/defence model seeded from the paper:
// each entry cites the section it comes from, and the Enables edges
// encode the cross-layer escalations the paper narrates (e.g. a cloud
// key leak at the data layer enables fleet-wide data extraction; a CAN
// masquerade at the network layer enables actuation abuse).
func DefaultCatalog() (*Catalog, error) {
	c := NewCatalog()

	threats := []*Threat{
		// Physical layer (§II).
		{ID: "T-relay", Layer: Physical, Name: "PKES relay attack", Section: "II-A",
			Enables: []string{"T-theft"}},
		{ID: "T-dist-reduce", Layer: Physical, Name: "UWB distance reduction (ghost peak / ED-LC)", Section: "II-A",
			Enables: []string{"T-theft"}},
		{ID: "T-dist-enlarge", Layer: Physical, Name: "Distance enlargement (jam-and-replay)", Section: "II-B",
			SafetyImpact: true},
		{ID: "T-sensor-spoof", Layer: Physical, Name: "Sensor spoofing (ghost objects)", Section: "II-B",
			SafetyImpact: true},
		{ID: "T-sensor-remove", Layer: Physical, Name: "Object removal from sensor view", Section: "II-B",
			SafetyImpact: true},
		{ID: "T-theft", Layer: Physical, Name: "Vehicle theft via entry system", Section: "II-A"},

		// Network layer (§III).
		{ID: "T-masquerade", Layer: Network, Name: "CAN masquerade (no sender authentication)", Section: "III",
			Enables: []string{"T-actuation"}, SafetyImpact: false},
		{ID: "T-replay", Layer: Network, Name: "In-vehicle frame replay", Section: "III-A",
			Enables: []string{"T-actuation"}},
		{ID: "T-bus-dos", Layer: Network, Name: "Bus flooding / bus-off DoS", Section: "III",
			SafetyImpact: true},
		{ID: "T-remote-entry", Layer: Network, Name: "Remote exploitation via wireless interface", Section: "III",
			Enables: []string{"T-masquerade", "T-malware"}},
		{ID: "T-actuation", Layer: Network, Name: "Unauthorized actuation of safety functions", Section: "III",
			SafetyImpact: true},

		// Software & platform layer (§IV).
		{ID: "T-malware", Layer: SoftwarePlatform, Name: "Unauthorized software on vehicle platform", Section: "IV-A",
			Enables: []string{"T-masquerade", "T-data-forge"}, SafetyImpact: true},
		{ID: "T-counterfeit-hw", Layer: SoftwarePlatform, Name: "Counterfeit/incompatible hardware in reconfiguration", Section: "IV-A",
			Enables: []string{"T-malware"}},
		{ID: "T-data-forge", Layer: SoftwarePlatform, Name: "Forged crash reports / logs / scenario data", Section: "IV-B"},
		{ID: "T-charging-fraud", Layer: SoftwarePlatform, Name: "Charging authorization fraud", Section: "IV-C"},

		// Data layer (§V).
		{ID: "T-dir-enum", Layer: Data, Name: "Backend directory enumeration", Section: "V-A",
			Enables: []string{"T-heapdump"}},
		{ID: "T-heapdump", Layer: Data, Name: "Exposed debug endpoint (heap dump)", Section: "V-A",
			Enables: []string{"T-key-leak"}},
		{ID: "T-key-leak", Layer: Data, Name: "Cloud credential leak from process memory", Section: "V-A",
			Enables: []string{"T-fleet-exfil"}},
		{ID: "T-fleet-exfil", Layer: Data, Name: "Fleet-wide telemetry exfiltration", Section: "V-A",
			Enables: []string{"T-stalking"}},
		// The paper argues the breach's tracking capability endangers
		// people directly (intelligence-service personnel, stalking),
		// so it counts as safety impact.
		{ID: "T-stalking", Layer: Data, Name: "Per-person geolocation tracking", Section: "V", SafetyImpact: true},

		// Network layer extensions (§VIII refs [52], [53]).
		{ID: "T-time-delay", Layer: Network, Name: "PTP time delay attack (clock skew via one-way delay)", Section: "VIII",
			Enables: []string{"T-actuation"}},

		// Software & platform extensions (§IV-A).
		{ID: "T-ota-rollback", Layer: SoftwarePlatform, Name: "Signed-but-vulnerable release replay (downgrade)", Section: "IV-A",
			Enables: []string{"T-malware"}},

		// Data layer extension (§VIII ref [54]).
		{ID: "T-unauth-access", Layer: Data, Name: "Unauthorized access to owner data by ecosystem parties", Section: "VIII"},

		// Collaboration layer extension (§VII-B privacy).
		{ID: "T-pseudonym-track", Layer: Collaboration, Name: "Trajectory tracking via linkable V2X transmissions", Section: "VII-B"},

		// System of systems layer (§VI).
		{ID: "T-backend-pivot", Layer: SystemOfSystems, Name: "Compromise cascade from backend into vehicles", Section: "VI-B",
			Enables: []string{"T-malware", "T-fleet-exfil"}, SafetyImpact: true},
		{ID: "T-resp-gap", Layer: SystemOfSystems, Name: "Unowned security responsibility at stakeholder boundary", Section: "VI-B",
			Enables: []string{"T-backend-pivot"}},
		{ID: "T-3rdparty", Layer: SystemOfSystems, Name: "Vulnerable third-party / legacy integration", Section: "VI-B",
			Enables: []string{"T-remote-entry"}},

		// Collaboration layer (§VII).
		{ID: "T-v2x-inject", Layer: Collaboration, Name: "External false-data injection into V2X", Section: "VII-B",
			SafetyImpact: true},
		{ID: "T-insider-fabricate", Layer: Collaboration, Name: "Insider data fabrication in collaborative perception", Section: "VII-B",
			SafetyImpact: true},
		{ID: "T-selfish-deadlock", Layer: Collaboration, Name: "Resource competition deadlock/collision between self-interested agents", Section: "VII-A",
			SafetyImpact: true},
	}
	for _, t := range threats {
		if err := c.AddThreat(t); err != nil {
			return nil, err
		}
	}

	defences := []*Defence{
		// Physical.
		{ID: "D-uwb-tof", Layer: Physical, Name: "UWB two-way ToF ranging (secure receiver)", Section: "II-A",
			Mitigates: []string{"T-relay", "T-dist-reduce"}, Requires: []string{"D-key-mgmt"}},
		{ID: "D-dist-bound", Layer: Physical, Name: "Distance bounding with commitment (LRP)", Section: "II-A",
			Mitigates: []string{"T-relay", "T-dist-reduce"}, Requires: []string{"D-key-mgmt"}},
		{ID: "D-enlarge-guard", Layer: Physical, Name: "Enlargement detection (UWB-ED energy test)", Section: "II-B",
			Mitigates: []string{"T-dist-enlarge"}, Requires: []string{"D-key-mgmt"}},
		{ID: "D-fusion", Layer: Physical, Name: "Multi-modal consensus fusion with verified ranging", Section: "II-B",
			Mitigates: []string{"T-sensor-spoof", "T-sensor-remove"}, Requires: []string{"D-uwb-tof"}},

		// Network.
		{ID: "D-secoc", Layer: Network, Name: "AUTOSAR SECOC (authenticated PDUs + freshness)", Section: "III-A",
			Mitigates: []string{"T-masquerade", "T-replay"}, Requires: []string{"D-key-mgmt"}},
		{ID: "D-macsec", Layer: Network, Name: "MACsec / CANsec link protection", Section: "III-A",
			Mitigates: []string{"T-masquerade", "T-replay"}, Requires: []string{"D-key-mgmt"}},
		{ID: "D-ids", Layer: Network, Name: "Network IDS + sender identification + response", Section: "VIII",
			Mitigates: []string{"T-bus-dos", "T-masquerade"}},
		{ID: "D-hardened-gw", Layer: Network, Name: "Hardened telematics gateway (reduced remote surface)", Section: "V-B",
			Mitigates: []string{"T-remote-entry"}},

		// Software & platform.
		{ID: "D-ssi-reconfig", Layer: SoftwarePlatform, Name: "SSI mutual authentication for reconfiguration", Section: "IV-A",
			Mitigates: []string{"T-malware", "T-counterfeit-hw"}, Requires: []string{"D-registry"}},
		{ID: "D-signed-data", Layer: SoftwarePlatform, Name: "Signed, linked data records", Section: "IV-B",
			Mitigates: []string{"T-data-forge"}, Requires: []string{"D-registry"}},
		{ID: "D-ssi-charging", Layer: SoftwarePlatform, Name: "SSI-based plug-and-charge", Section: "IV-C",
			Mitigates: []string{"T-charging-fraud"}, Requires: []string{"D-registry"}},
		{ID: "D-registry", Layer: SoftwarePlatform, Name: "Verifiable data registry with multiple trust anchors", Section: "IV"},
		{ID: "D-key-mgmt", Layer: SoftwarePlatform, Name: "Vehicle key provisioning & session key management", Section: "III-A"},

		// Data.
		{ID: "D-no-debug", Layer: Data, Name: "Production hardening: debug endpoints disabled", Section: "V-B",
			Mitigates: []string{"T-heapdump"}},
		{ID: "D-secret-store", Layer: Data, Name: "External secret store / memory scrubbing", Section: "V-B",
			Mitigates: []string{"T-key-leak"}},
		{ID: "D-least-priv", Layer: Data, Name: "Least-privilege IAM scoping", Section: "V-B",
			Mitigates: []string{"T-fleet-exfil"}},
		{ID: "D-minimize", Layer: Data, Name: "Data minimization (coarse geolocation)", Section: "V-C",
			Mitigates: []string{"T-stalking"}},
		{ID: "D-enum-defence", Layer: Data, Name: "Enumeration rate limiting / uniform responses", Section: "V-B",
			Mitigates: []string{"T-dir-enum"}},

		{ID: "D-ptpsec", Layer: Network, Name: "PTPsec cyclic path asymmetry analysis", Section: "VIII",
			Mitigates: []string{"T-time-delay"}},
		{ID: "D-ota", Layer: SoftwarePlatform, Name: "Signed OTA with anti-rollback and health-checked boot", Section: "IV-A",
			Mitigates: []string{"T-ota-rollback"}, Requires: []string{"D-key-mgmt"}},
		{ID: "D-secret-sharing", Layer: Data, Name: "Owner-controlled access via threshold secret sharing", Section: "VIII",
			Mitigates: []string{"T-unauth-access"}, Requires: []string{"D-key-mgmt"}},
		{ID: "D-pseudonyms", Layer: Collaboration, Name: "Rotating V2X pseudonym certificates with escrow", Section: "VII-B",
			Mitigates: []string{"T-pseudonym-track"}, Requires: []string{"D-registry"}},

		// System of systems.
		{ID: "D-segmentation", Layer: SystemOfSystems, Name: "Inter-system segmentation & hardened boundaries", Section: "VI-B",
			Mitigates: []string{"T-backend-pivot"}},
		{ID: "D-resp-matrix", Layer: SystemOfSystems, Name: "Unified security framework with assigned link owners", Section: "VI-B",
			Mitigates: []string{"T-resp-gap"}},
		{ID: "D-supplier-audit", Layer: SystemOfSystems, Name: "Third-party / legacy component security validation", Section: "VI-B",
			Mitigates: []string{"T-3rdparty"}},

		// Collaboration.
		{ID: "D-v2x-auth", Layer: Collaboration, Name: "Authenticated V2X messaging", Section: "VII-B",
			Mitigates: []string{"T-v2x-inject"}, Requires: []string{"D-key-mgmt"}},
		{ID: "D-misbehaviour", Layer: Collaboration, Name: "Redundancy-based misbehaviour detection", Section: "VII-B",
			Mitigates: []string{"T-insider-fabricate"}, Requires: []string{"D-v2x-auth"}},
		{ID: "D-regulation", Layer: Collaboration, Name: "Common directives for competing agents", Section: "VII-A",
			Mitigates: []string{"T-selfish-deadlock"}},
	}
	for _, d := range defences {
		if err := c.AddDefence(d); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// FullDeployment deploys every defence in the catalog.
func FullDeployment(c *Catalog) (*Posture, error) {
	p := NewPosture(c)
	for _, d := range c.Defences() {
		if err := p.Deploy(d.ID); err != nil {
			return nil, err
		}
	}
	return p, nil
}
