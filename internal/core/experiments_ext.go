package core

import (
	"fmt"
	"math"
	"strings"

	"autosec/internal/accesscontrol"
	"autosec/internal/ota"
	"autosec/internal/ptp"
	"autosec/internal/v2x"
	"autosec/internal/world"
)

// RunExpAccess reproduces the §VIII controlled-access claim (SeeMQTT,
// ref [54]): threshold secret sharing lets data owners gate access
// across multiple stakeholders, tolerating keyholder compromise below
// the threshold.
func RunExpAccess(rc *RunContext) (string, error) {
	rng := rc.RNG()
	var b strings.Builder

	owner := accesscontrol.NewOwner("vehicle-7", rng)
	holders := []*accesscontrol.Keyholder{
		accesscontrol.NewKeyholder("kh-oem"),
		accesscontrol.NewKeyholder("kh-insurer"),
		accesscontrol.NewKeyholder("kh-authority"),
	}
	msg, err := owner.Publish([]byte("crash report: 48 km/h, brake applied, airbag fired"),
		holders, 2, []string{"workshop-42"}, 10_000)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "§VIII — owner-controlled data access (2-of-3 secret sharing)\n\n")
	fmt.Fprintf(&b, "published %s: ciphertext at the broker, key split across %v\n", msg.ID, msg.Holders)

	tb := rc.Table("access decisions",
		"requester", "condition", "outcome")
	tryCase := func(who, condition string, now int64, prep func(m *accesscontrol.SealedMessage, hs []*accesscontrol.Keyholder)) error {
		fresh := []*accesscontrol.Keyholder{
			accesscontrol.NewKeyholder("kh-oem"),
			accesscontrol.NewKeyholder("kh-insurer"),
			accesscontrol.NewKeyholder("kh-authority"),
		}
		m, err := owner.Publish([]byte("crash report payload"), fresh, 2, []string{"workshop-42"}, 10_000)
		if err != nil {
			return err
		}
		if prep != nil {
			prep(m, fresh)
		}
		_, err = accesscontrol.Retrieve(m, who, fresh, now)
		outcome := "GRANTED"
		if err != nil {
			outcome = "denied"
		}
		tb.AddRow(who, condition, outcome)
		return nil
	}
	cases := []struct {
		who, condition string
		now            int64
		prep           func(m *accesscontrol.SealedMessage, hs []*accesscontrol.Keyholder)
	}{
		{"workshop-42", "authorized", 100, nil},
		{"data-broker", "not on policy", 100, nil},
		{"workshop-42", "grant expired", 20_000, nil},
		{"workshop-42", "revoked at all holders", 100, func(m *accesscontrol.SealedMessage, hs []*accesscontrol.Keyholder) {
			for _, h := range hs {
				h.Revoke(m.ID, "workshop-42")
			}
		}},
		{"attacker", "1 keyholder compromised (below threshold)", 100, func(_ *accesscontrol.SealedMessage, hs []*accesscontrol.Keyholder) {
			hs[0].Compromised = true
		}},
		{"attacker", "2 keyholders compromised (threshold reached)", 100, func(_ *accesscontrol.SealedMessage, hs []*accesscontrol.Keyholder) {
			hs[0].Compromised = true
			hs[1].Compromised = true
		}},
	}
	for _, tc := range cases {
		if err := tryCase(tc.who, tc.condition, tc.now, tc.prep); err != nil {
			return "", err
		}
	}
	b.WriteString("\n")
	b.WriteString(tb.String())
	b.WriteString("\nbelow the threshold a compromised keyholder's share is information-theoretically useless\n")
	b.WriteString("(uniformity verified by property test in package accesscontrol).\n")
	return b.String(), nil
}

// RunExpPTP reproduces the ref-[53] PTPsec result: the time delay
// attack skews standard PTP undetectably, and cyclic path asymmetry
// analysis over redundant paths detects, localizes, and routes around
// it.
func RunExpPTP(rc *RunContext) (string, error) {
	master := ptp.Clock{}
	slave := ptp.Clock{OffsetNs: 125_000}
	mkPaths := func() []*ptp.Link {
		return []*ptp.Link{
			{Name: "a", FwdNs: 5000, RevNs: 5000},
			{Name: "b", FwdNs: 8000, RevNs: 8000},
			{Name: "c", FwdNs: 11000, RevNs: 11000},
		}
	}

	tb := rc.Table("§VIII / ref [53] — PTP time delay attack vs PTPsec (3 redundant paths)",
		"attack", "naive-PTP-error-ns", "detected", "localized", "PTPsec-error-ns", "synced-via")
	cases := []struct {
		name  string
		apply func(paths []*ptp.Link)
	}{
		{"none", func([]*ptp.Link) {}},
		{"fwd +4µs on a", func(p []*ptp.Link) { p[0].AttackFwdNs = 4000 }},
		{"rev +2µs on b", func(p []*ptp.Link) { p[1].AttackRevNs = 2000 }},
		{"fwd +10µs on c", func(p []*ptp.Link) { p[2].AttackFwdNs = 10000 }},
	}
	for _, tc := range cases {
		paths := mkPaths()
		tc.apply(paths)
		naive := ptp.Sync(master, slave, paths[0], 0)
		rep, err := ptp.Analyze(master, slave, paths, 100, 0)
		if err != nil {
			return "", err
		}
		// An empty cell would collapse under the scraper's two-space
		// column split and shift every later column; render "-" instead.
		localized := strings.Join(rep.AttackedPaths, ",")
		if localized == "" {
			localized = "-"
		}
		tb.AddRow(tc.name,
			naive.ErrorNs(),
			rep.Attacked(),
			localized,
			math.Abs(rep.Sync.ErrorNs()),
			rep.UsedPath)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nthe cyclic measurement reads only the master's clock, so clock offsets cancel exactly and\n")
	b.WriteString("the attacker's one-way delay has nowhere to hide.\n")
	return b.String(), nil
}

// RunExpV2X reproduces the authenticated-V2X + pseudonym-privacy story:
// message authentication, escrowed misbehaviour resolution, and the
// rotation/linkability trade-off.
func RunExpV2X(rc *RunContext) (string, error) {
	rng := rc.RNG()
	authSeed := make([]byte, 32)
	rng.Bytes(authSeed)
	authority, err := v2x.NewAuthority(authSeed)
	if err != nil {
		return "", err
	}
	authority.Enroll("av-1")
	authority.Enroll("av-2")
	verifier := &v2x.Verifier{Root: authority.PublicKey(), IsRevoked: authority.Revoked, MaxAge: 10}

	var b strings.Builder
	b.WriteString("§VII-B — authenticated V2X with pseudonym privacy\n\n")

	// Authentication outcomes.
	ps1, err := authority.IssuePseudonyms("av-1", 1, 0, 600, rng)
	if err != nil {
		return "", err
	}
	good, err := v2x.Sign(ps1[0], world.Vec2{X: 100}, 13.9, 42, []byte("cam"))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "legitimate CAM: verify=%v\n", verifier.Verify(good, 45) == nil)

	rogueSeed := make([]byte, 32)
	rng.Bytes(rogueSeed)
	rogue, err := v2x.NewAuthority(rogueSeed)
	if err != nil {
		return "", err
	}
	rogue.Enroll("evil")
	rp, err := rogue.IssuePseudonyms("evil", 1, 0, 600, rng)
	if err != nil {
		return "", err
	}
	forged, err := v2x.Sign(rp[0], world.Vec2{X: 100}, 13.9, 42, []byte("ghost"))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "forged CAM (self-made authority): verify=%v\n", verifier.Verify(forged, 45) == nil)

	// Misbehaviour: resolve + revoke.
	vehicle, err := authority.Resolve(ps1[0].ID)
	if err != nil {
		return "", err
	}
	n := authority.RevokeVehicle(vehicle)
	fmt.Fprintf(&b, "misbehaviour report on pseudonym %d → resolved to %s, %d pseudonyms revoked; verify now=%v\n\n",
		ps1[0].ID, vehicle, n, verifier.Verify(good, 46) == nil)

	// Privacy: rotation bounds trajectory linkage.
	tb := rc.Table("pseudonym rotation vs trajectory linkage (1 h drive, CAM every 10 s)",
		"pseudonym-lifetime-s", "segments", "longest-linkable-s", "mean-linkable-s")
	for _, lifetime := range []int64{3600, 900, 300, 60} {
		count := int(3600 / lifetime)
		ps, err := authority.IssuePseudonyms("av-2", count, 0, lifetime, rng)
		if err != nil {
			return "", err
		}
		var obs []v2x.Observation
		for ts := int64(0); ts < 3600; ts += 10 {
			idx := int(ts / lifetime)
			if idx >= len(ps) {
				idx = len(ps) - 1
			}
			obs = append(obs, v2x.Observation{PseudonymID: ps[idx].ID, Timestamp: ts})
		}
		rep := v2x.LinkByPseudonym(obs)
		tb.AddRow(lifetime, rep.Segments, rep.LongestSegmentS, rep.MeanSegmentS)
	}
	b.WriteString(tb.String())
	b.WriteString("\nauthentication stops outsiders (§VII-B) while rotation applies §V-C's data-minimization\n")
	b.WriteString("principle to the vehicle's own broadcasts.\n")
	return b.String(), nil
}

// RunExpOTA reproduces the update-pipeline guarantees behind §IV-A:
// forged, corrupted, downgraded, and bootlooping releases are all
// contained.
func RunExpOTA(rc *RunContext) (string, error) {
	mkSeed := func(b byte) []byte {
		s := make([]byte, 32)
		for i := range s {
			s[i] = b ^ byte(rc.Seed)
		}
		return s
	}
	vendor, err := ota.NewSigner(mkSeed(1))
	if err != nil {
		return "", err
	}
	attacker, err := ota.NewSigner(mkSeed(9))
	if err != nil {
		return "", err
	}
	factoryImg := []byte("fw 1.0")
	dev, err := ota.NewDevice("brake-ctrl", vendor.PublicKey(), vendor.Release("brake-ctrl", "1.0", 1, factoryImg), factoryImg)
	if err != nil {
		return "", err
	}

	tb := rc.Table("§IV-A — OTA update pipeline outcomes",
		"event", "accepted", "running-after")
	try := func(name string, m *ota.Manifest, img []byte, healthy bool) {
		err := dev.Install(m, img)
		if err == nil {
			dev.Boot(func([]byte) bool { return healthy })
		}
		tb.AddRow(name, err == nil, dev.ActiveVersion())
	}
	img2 := []byte("fw 2.0")
	try("legitimate 2.0", vendor.Release("brake-ctrl", "2.0", 2, img2), img2, true)
	malware := []byte("malware")
	try("forged manifest", attacker.Release("brake-ctrl", "6.6", 99, malware), malware, true)
	corrupt := append([]byte(nil), img2...)
	corrupt[0] ^= 1
	try("corrupted image", vendor.Release("brake-ctrl", "2.0c", 3, img2), corrupt, true)
	old := []byte("fw 1.5 vulnerable")
	try("signed downgrade (counter 1)", vendor.Release("brake-ctrl", "1.5", 1, old), old, true)
	loop := []byte("fw 3.0 bootloop")
	try("bootlooping 3.0 (health fail)", vendor.Release("brake-ctrl", "3.0", 4, loop), loop, false)
	fixed := []byte("fw 3.1 fixed")
	try("fixed 3.1", vendor.Release("brake-ctrl", "3.1", 5, fixed), fixed, true)

	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\ndevice log:\n")
	for _, l := range dev.Log {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String(), nil
}
