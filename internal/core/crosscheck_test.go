package core

import (
	"fmt"
	"runtime"
	"testing"

	"autosec/internal/sim"
)

// TestSerialParallelCrossCheck is the tentpole invariant of the
// replicate pool: every registry experiment must produce byte-identical
// reports and bit-identical typed metric streams whether its replicate
// loops run serially (nil pool) or fan out over a pool of 1, 2, or
// GOMAXPROCS workers. The serial pre-forking of per-replicate RNGs
// makes this hold by construction; this test (run under -race in CI)
// is what keeps it true as experiments evolve.
func TestSerialParallelCrossCheck(t *testing.T) {
	const seed = 42
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			base, err := RunExperimentResult(e.ID, seed, RunOptions{})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			for _, workers := range counts {
				res, err := RunExperimentResult(e.ID, seed, RunOptions{Pool: sim.NewWorkerPool(workers)})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if res.Report != base.Report {
					t.Errorf("workers=%d: report diverged from serial run\nfirst difference: %s",
						workers, firstDiff(base.Report, res.Report))
				}
				if len(res.Metrics) != len(base.Metrics) {
					t.Errorf("workers=%d: %d metrics, serial run had %d", workers, len(res.Metrics), len(base.Metrics))
					continue
				}
				for i := range base.Metrics {
					if res.Metrics[i] != base.Metrics[i] {
						t.Errorf("workers=%d: metric %d = %+v, serial run had %+v",
							workers, i, res.Metrics[i], base.Metrics[i])
					}
				}
			}
		})
	}
}

// firstDiff locates the first diverging byte for a readable failure.
func firstDiff(a, b string) string {
	off := 0
	for off < len(a) && off < len(b) && a[off] == b[off] {
		off++
	}
	end := func(s string) string {
		e := off + 32
		if e > len(s) {
			e = len(s)
		}
		return s[off:e]
	}
	return fmt.Sprintf("byte %d: %q vs %q", off, end(a), end(b))
}
