// Package core implements the paper's primary contribution: the layered
// security framework of Fig. 1. It models the six abstraction layers of
// an autonomous system (physical, network, software & platform, data,
// system of systems, collaboration), a catalog of assets, threats, and
// defences drawn from §II–§VII, cross-layer attack-path analysis, and
// the holistic posture assessment of §VIII — including the paper's
// synergy requirement that "security measures implemented at different
// layers will not be effective unless they are designed to work in
// synergy with one another".
//
// The package also hosts the experiment registry that regenerates every
// figure and table of the paper from the substrate simulations.
//
// Package core also hosts the experiment registry: fig1 runs directly on
// this framework, and `avsec list` enumerates every id.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Layer is one abstraction layer of Fig. 1.
type Layer int

const (
	Physical Layer = iota
	Network
	SoftwarePlatform
	Data
	SystemOfSystems
	Collaboration
	layerCount
)

// Layers returns all layers bottom-up.
func Layers() []Layer {
	out := make([]Layer, layerCount)
	for i := range out {
		out[i] = Layer(i)
	}
	return out
}

func (l Layer) String() string {
	switch l {
	case Physical:
		return "physical"
	case Network:
		return "network"
	case SoftwarePlatform:
		return "software-platform"
	case Data:
		return "data"
	case SystemOfSystems:
		return "system-of-systems"
	case Collaboration:
		return "collaboration"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Threat is one attack class from the paper.
type Threat struct {
	ID    string
	Layer Layer
	Name  string
	// Enables lists threats this one makes possible once realized —
	// the cross-layer escalation edges.
	Enables []string
	// SafetyImpact marks threats that directly endanger people.
	SafetyImpact bool
	// Section cites the paper section describing it.
	Section string
}

// Defence is one countermeasure from the paper.
type Defence struct {
	ID    string
	Layer Layer
	Name  string
	// Mitigates lists threat IDs this defence addresses.
	Mitigates []string
	// Requires lists defences that must also be deployed for this one
	// to be effective (the synergy dependency).
	Requires []string
	Section  string
}

// Catalog is the full threat/defence model.
type Catalog struct {
	threats  map[string]*Threat
	defences map[string]*Defence
	tOrder   []string
	dOrder   []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{threats: map[string]*Threat{}, defences: map[string]*Defence{}}
}

// AddThreat registers a threat.
func (c *Catalog) AddThreat(t *Threat) error {
	if t.ID == "" {
		return fmt.Errorf("core: threat needs an ID")
	}
	if _, dup := c.threats[t.ID]; dup {
		return fmt.Errorf("core: duplicate threat %s", t.ID)
	}
	c.threats[t.ID] = t
	c.tOrder = append(c.tOrder, t.ID)
	return nil
}

// AddDefence registers a defence; its mitigation targets must exist.
func (c *Catalog) AddDefence(d *Defence) error {
	if d.ID == "" {
		return fmt.Errorf("core: defence needs an ID")
	}
	if _, dup := c.defences[d.ID]; dup {
		return fmt.Errorf("core: duplicate defence %s", d.ID)
	}
	for _, tid := range d.Mitigates {
		if _, ok := c.threats[tid]; !ok {
			return fmt.Errorf("core: defence %s mitigates unknown threat %s", d.ID, tid)
		}
	}
	c.defences[d.ID] = d
	c.dOrder = append(c.dOrder, d.ID)
	return nil
}

// Threat returns a threat by ID (nil if absent).
func (c *Catalog) Threat(id string) *Threat { return c.threats[id] }

// Defence returns a defence by ID (nil if absent).
func (c *Catalog) Defence(id string) *Defence { return c.defences[id] }

// Threats returns all threats in insertion order.
func (c *Catalog) Threats() []*Threat {
	out := make([]*Threat, 0, len(c.tOrder))
	for _, id := range c.tOrder {
		out = append(out, c.threats[id])
	}
	return out
}

// Defences returns all defences in insertion order.
func (c *Catalog) Defences() []*Defence {
	out := make([]*Defence, 0, len(c.dOrder))
	for _, id := range c.dOrder {
		out = append(out, c.defences[id])
	}
	return out
}

// ThreatsAt returns the threats of one layer.
func (c *Catalog) ThreatsAt(l Layer) []*Threat {
	var out []*Threat
	for _, t := range c.Threats() {
		if t.Layer == l {
			out = append(out, t)
		}
	}
	return out
}

// Validate checks referential integrity of Enables/Requires edges.
func (c *Catalog) Validate() error {
	for _, t := range c.Threats() {
		for _, e := range t.Enables {
			if _, ok := c.threats[e]; !ok {
				return fmt.Errorf("core: threat %s enables unknown %s", t.ID, e)
			}
		}
	}
	for _, d := range c.Defences() {
		for _, r := range d.Requires {
			if _, ok := c.defences[r]; !ok {
				return fmt.Errorf("core: defence %s requires unknown %s", d.ID, r)
			}
		}
	}
	return nil
}

// Posture is a deployment: the set of deployed defence IDs.
type Posture struct {
	catalog  *Catalog
	deployed map[string]bool
}

// NewPosture starts with nothing deployed.
func NewPosture(c *Catalog) *Posture {
	return &Posture{catalog: c, deployed: map[string]bool{}}
}

// Deploy marks a defence as present.
func (p *Posture) Deploy(ids ...string) error {
	for _, id := range ids {
		if p.catalog.Defence(id) == nil {
			return fmt.Errorf("core: unknown defence %s", id)
		}
		p.deployed[id] = true
	}
	return nil
}

// Effective reports whether a defence is deployed *and* all its synergy
// dependencies are effective too.
func (p *Posture) Effective(id string) bool {
	return p.effective(id, map[string]bool{})
}

func (p *Posture) effective(id string, visiting map[string]bool) bool {
	if !p.deployed[id] || visiting[id] {
		return false
	}
	visiting[id] = true
	defer delete(visiting, id)
	for _, req := range p.catalog.Defence(id).Requires {
		if !p.effective(req, visiting) {
			return false
		}
	}
	return true
}

// Mitigated reports whether the threat is covered: either an effective
// defence addresses it directly, or it is a pure consequence threat —
// one only reachable through Enables edges — and every threat enabling
// it is itself mitigated (cutting all paths that could realize it).
func (p *Posture) Mitigated(threatID string) bool {
	return p.mitigated(threatID, map[string]bool{})
}

func (p *Posture) mitigated(threatID string, visiting map[string]bool) bool {
	for _, d := range p.catalog.Defences() {
		if !p.Effective(d.ID) {
			continue
		}
		for _, tid := range d.Mitigates {
			if tid == threatID {
				return true
			}
		}
	}
	if visiting[threatID] {
		return false
	}
	visiting[threatID] = true
	defer delete(visiting, threatID)
	enablers := 0
	for _, t := range p.catalog.Threats() {
		for _, e := range t.Enables {
			if e != threatID {
				continue
			}
			enablers++
			if !p.mitigated(t.ID, visiting) {
				return false
			}
		}
	}
	return enablers > 0 // entry threats need a direct defence
}

// Coverage summarizes one layer's residual risk.
type Coverage struct {
	Layer     Layer
	Threats   int
	Mitigated int
}

// CoverageByLayer computes per-layer threat coverage.
func (p *Posture) CoverageByLayer() []Coverage {
	out := make([]Coverage, layerCount)
	for i := range out {
		out[i].Layer = Layer(i)
	}
	for _, t := range p.catalog.Threats() {
		out[t.Layer].Threats++
		if p.Mitigated(t.ID) {
			out[t.Layer].Mitigated++
		}
	}
	return out
}

// AttackPath is a chain of unmitigated threats ending in safety impact.
type AttackPath []string

func (a AttackPath) String() string { return strings.Join(a, " → ") }

// AttackPaths finds every path through *unmitigated* threats from any
// unmitigated entry threat to a safety-impact threat, following Enables
// edges. This is the cross-layer analysis of §VIII: a defence gap at one
// layer opens paths that traverse others.
func (p *Posture) AttackPaths() []AttackPath {
	var paths []AttackPath
	var walk func(id string, trail []string)
	walk = func(id string, trail []string) {
		t := p.catalog.Threat(id)
		if p.Mitigated(id) {
			return
		}
		trail = append(append([]string(nil), trail...), id)
		if t.SafetyImpact {
			paths = append(paths, AttackPath(trail))
		}
		for _, next := range t.Enables {
			seen := false
			for _, prev := range trail {
				if prev == next {
					seen = true
					break
				}
			}
			if !seen {
				walk(next, trail)
			}
		}
	}
	// Entry threats: those not enabled by any other threat.
	enabled := map[string]bool{}
	for _, t := range p.catalog.Threats() {
		for _, e := range t.Enables {
			enabled[e] = true
		}
	}
	for _, t := range p.catalog.Threats() {
		if !enabled[t.ID] {
			walk(t.ID, nil)
		}
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i].String() < paths[j].String() })
	return paths
}

// IneffectiveDeployments lists defences that are deployed but not
// effective because a synergy dependency is missing — the concrete form
// of the paper's "will not be effective unless ... in synergy".
func (p *Posture) IneffectiveDeployments() []string {
	var out []string
	for id := range p.deployed {
		if !p.Effective(id) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
