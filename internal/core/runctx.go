package core

import (
	"fmt"
	"io"
	"strings"

	"autosec/internal/ext"
	"autosec/internal/sim"
)

// RunContext carries the observability plumbing of one experiment run:
// the seed, the typed metric sink, and the structured tracer. Both
// sinks may be nil, in which case every helper degrades to the exact
// legacy behaviour at no cost — experiments never need to nil-check.
type RunContext struct {
	// Seed is the deterministic simulation seed of this run.
	Seed int64
	// Metrics collects the typed values the run publishes (nil = off).
	Metrics *sim.MetricSet
	// Tracer receives structured trace events (nil = off).
	Tracer sim.Tracer
	// Pool is the worker budget replicate fan-out borrows idle slots
	// from (nil = every replicate loop runs serially). Shared with the
	// campaign runner so cells × replicates stay inside one global
	// -jobs budget.
	Pool *sim.WorkerPool

	rng *sim.RNG
}

// NewRunContext returns a context for one run at the given seed with
// structured capture disabled; tests and callers that want capture set
// Metrics and Tracer before running.
func NewRunContext(seed int64) *RunContext { return &RunContext{Seed: seed} }

// Table returns a report table bound to the run's metric sink: its
// numeric cells are published as typed metrics when the table renders.
func (rc *RunContext) Table(title string, headers ...string) *sim.Table {
	t := sim.NewTable(title, headers...)
	t.BindMetrics(rc.Metrics)
	return t
}

// Metric publishes one typed metric. Experiments call it alongside
// prose report lines that carry a number, keeping the typed stream in
// lockstep with the text the legacy scraper reads.
func (rc *RunContext) Metric(name string, v float64) {
	rc.Metrics.Add(name, v)
}

// RNG returns the run's root random source, creating it on first use.
// Routing RNG construction through the context lets the run record a
// final draw-count checkpoint in the trace.
func (rc *RunContext) RNG() *sim.RNG {
	if rc.rng == nil {
		rc.rng = sim.NewRNG(rc.Seed)
	}
	return rc.rng
}

// Replicates fans n independent Monte-Carlo replicates out over the
// run's worker pool (serially when the pool is nil or fully busy). The
// per-replicate RNGs are forked from rng serially in index order and
// all replicates join before Replicates returns, so the run's output is
// bit-identical to the serial fork-per-iteration loop at every pool
// size. fn must draw randomness only from its own RNG and write only
// index-i state; in particular it must not touch rc's metric or trace
// sinks — publish after the join, in index order.
func (rc *RunContext) Replicates(n int, rng *sim.RNG, fn func(i int, rng *sim.RNG) error) error {
	return rc.Pool.Replicates(n, rng, fn)
}

// Kernel returns a simulation kernel seeded with the run's seed and
// wired to the run's tracer, so scheduled/executed events, metric
// samples, and RNG checkpoints land in the trace.
func (rc *RunContext) Kernel() *sim.Kernel {
	k := sim.NewKernel(rc.Seed)
	if rc.Tracer != nil {
		k.SetTracer(rc.Tracer)
	}
	return k
}

// RunResult is the structured outcome of one experiment run.
type RunResult struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Source  string       `json:"source"`
	Seed    int64        `json:"seed"`
	Report  string       `json:"-"`
	Metrics []sim.Metric `json:"metrics"`
}

// WriteJSON writes the result as a stable, indented JSON document.
func (r *RunResult) WriteJSON(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "{\n  \"id\": %q,\n  \"title\": %q,\n  \"source\": %q,\n  \"seed\": %d,\n  \"metrics\": [",
		r.ID, r.Title, r.Source, r.Seed)
	for i, m := range r.Metrics {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n    {\"name\": %q, \"value\": %s}", m.Name, sim.FormatJSONNumber(m.Value))
	}
	if len(r.Metrics) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RunOptions selects the observability sinks and the worker budget of
// RunExperimentResult.
type RunOptions struct {
	// Tracer, when non-nil, receives the run's structured trace.
	Tracer sim.Tracer
	// Pool, when non-nil, is the worker budget the run's replicate
	// loops borrow idle slots from. Nil runs every replicate loop
	// serially; the output is identical either way.
	Pool *sim.WorkerPool
}

// RunExperimentResult runs one experiment by id with structured metric
// capture (and optionally tracing) enabled, returning the report
// alongside the typed metrics. The trace is bracketed by run-start and
// run-end events; run-end carries the root RNG draw-count checkpoint.
func RunExperimentResult(id string, seed int64, opt RunOptions) (*RunResult, error) {
	e, err := lookup(id)
	if err != nil {
		return nil, err
	}
	return RunResultOf(e, seed, opt)
}

// RunResultOf is RunExperimentResult for an Experiment value that need
// not be in the registry — the entry point for DSL scenarios compiled
// by internal/scenario, which run through the exact same observability
// and worker-pool plumbing as registry experiments.
func RunResultOf(e Experiment, seed int64, opt RunOptions) (*RunResult, error) {
	rc := NewRunContext(seed)
	rc.Metrics = sim.NewMetricSet()
	rc.Tracer = opt.Tracer
	rc.Pool = opt.Pool
	if rc.Tracer != nil {
		rc.Metrics.BindTrace(rc.Tracer, nil)
		rc.Tracer.Trace(sim.TraceEvent{Kind: "run-start", Name: e.ID, Value: float64(seed)})
	}
	report, err := e.Run(rc)
	if err != nil {
		return nil, err
	}
	if rc.Tracer != nil {
		var draws uint64
		if rc.rng != nil {
			draws = rc.rng.Draws()
		}
		rc.Tracer.Trace(sim.TraceEvent{Kind: "run-end", Name: e.ID, Draws: draws})
	}
	return &RunResult{ID: e.ID, Title: e.Title, Source: e.Source, Seed: seed,
		Report: report, Metrics: rc.Metrics.Metrics()}, nil
}

// RunExperiment runs one experiment by id with structured capture
// disabled, returning only the report text — the legacy entry point the
// campaign scraper path and the benchmarks use. Replicate loops inside
// the experiment fan out over the process-wide sim.DefaultPool; the
// report is bit-identical to a serial run (pinned by the cross-check
// test in parallel_test.go).
func RunExperiment(id string, seed int64) (string, error) {
	return RunExperimentWith(id, seed, sim.DefaultPool())
}

// RunExperimentWith is RunExperiment with an explicit worker budget for
// the experiment's replicate loops; nil means fully serial. Campaign
// callers pass their shared cells × replicates pool here.
func RunExperimentWith(id string, seed int64, pool *sim.WorkerPool) (string, error) {
	e, err := lookup(id)
	if err != nil {
		return "", err
	}
	rc := NewRunContext(seed)
	rc.Pool = pool
	return e.Run(rc)
}

// lookup finds an experiment by id; unknown ids get an error that
// lists near-miss suggestions so CLI typos are self-diagnosing.
func lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	msg := fmt.Sprintf("core: unknown experiment %q", id)
	if sug := SuggestExperiments(id, 3); len(sug) > 0 {
		msg += fmt.Sprintf(" (did you mean %s?)", strings.Join(sug, ", "))
	}
	return Experiment{}, fmt.Errorf("%s — run 'avsec list' for all ids", msg)
}

// SuggestExperiments returns up to max registry ids closest to the
// misspelled id by Damerau–Levenshtein distance, nearest first, ties in
// registry order.
func SuggestExperiments(id string, max int) []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return SuggestIDs(id, ids, max)
}

// SuggestIDs returns up to max candidates from ids closest to the
// misspelled id, nearest first, ties in slice order. It delegates to
// the extension kernel's did-you-mean (ext.SuggestNames), so id
// suggestions and registry-name suggestions rank identically. The CLI
// uses this over the union of registry experiments and loaded scenario
// names, so a typoed scenario id is self-diagnosing too.
func SuggestIDs(id string, ids []string, max int) []string {
	return ext.SuggestNames(id, ids, max)
}
