package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"autosec/internal/sim"
)

// goldenSeeds are the extra seeds every experiment must survive beyond
// the canonical seed 42: the determinism contract is only credible if
// experiments also *run* everywhere, not just at the seed the paper's
// tables were generated from.
var goldenSeeds = []int64{7, 1001, 92821}

// capture runs one experiment with full observability enabled and
// returns the report, the typed metrics, and the JSONL trace bytes.
func capture(t *testing.T, id string, seed int64) (string, []sim.Metric, []byte) {
	t.Helper()
	var trace bytes.Buffer
	tr := sim.NewJSONLTracer(&trace)
	res, err := RunExperimentResult(id, seed, RunOptions{Tracer: tr})
	if err != nil {
		t.Fatalf("%s at seed %d: %v", id, seed, err)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("%s at seed %d: trace write: %v", id, seed, err)
	}
	return res.Report, res.Metrics, trace.Bytes()
}

// TestGoldenDeterminismAllExperiments executes all registry experiments
// twice at seed 42 and asserts byte-identical reports, metrics, and
// traces — the sim kernel's "same seed ⇒ identical output" requirement
// now covers the full deterministic surface, trace included — then runs
// each at three distinct seeds asserting success and non-trivial
// output.
func TestGoldenDeterminismAllExperiments(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			first, m1, tr1 := capture(t, e.ID, 42)
			second, m2, tr2 := capture(t, e.ID, 42)
			if first != second {
				off := 0
				for off < len(first) && off < len(second) && first[off] == second[off] {
					off++
				}
				t.Fatalf("%s violates the determinism contract: reports diverge at byte %d\nfirst:  %.60q\nsecond: %.60q",
					e.ID, off, tail(first, off), tail(second, off))
			}
			if len(m1) != len(m2) {
				t.Fatalf("%s: metric count diverges across identical runs: %d vs %d", e.ID, len(m1), len(m2))
			}
			for i := range m1 {
				if m1[i] != m2[i] {
					t.Fatalf("%s: metric %d diverges: %+v vs %+v", e.ID, i, m1[i], m2[i])
				}
			}
			if !bytes.Equal(tr1, tr2) {
				t.Fatalf("%s: trace bytes diverge across identical runs", e.ID)
			}
			// The trace must be valid JSONL bracketed by run-start/run-end.
			lines := strings.Split(strings.TrimSuffix(string(tr1), "\n"), "\n")
			if len(lines) < 2 {
				t.Fatalf("%s: trace has %d lines, want >= 2", e.ID, len(lines))
			}
			for _, line := range lines {
				var ev sim.TraceEvent
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("%s: invalid trace line %q: %v", e.ID, line, err)
				}
			}
			var start, end sim.TraceEvent
			json.Unmarshal([]byte(lines[0]), &start)
			json.Unmarshal([]byte(lines[len(lines)-1]), &end)
			if start.Kind != "run-start" || start.Name != e.ID || end.Kind != "run-end" {
				t.Fatalf("%s: trace not bracketed: first %q last %q", e.ID, lines[0], lines[len(lines)-1])
			}

			for _, seed := range goldenSeeds {
				out, err := RunExperiment(e.ID, seed)
				if err != nil {
					t.Fatalf("%s at seed %d: %v", e.ID, seed, err)
				}
				if len(out) < 40 {
					t.Errorf("%s at seed %d: output suspiciously short:\n%s", e.ID, seed, out)
				}
			}
		})
	}
}

// TestTracedRunMatchesUntraced asserts the nil-tracer fast path: the
// report with observability fully enabled must equal the report with it
// fully disabled, for every experiment. Tracing is read-only.
func TestTracedRunMatchesUntraced(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			plain, err := RunExperiment(e.ID, 42)
			if err != nil {
				t.Fatal(err)
			}
			traced, _, _ := capture(t, e.ID, 42)
			if plain != traced {
				t.Fatalf("%s: enabling observability changed the report", e.ID)
			}
		})
	}
}

// tail returns s from offset off, for divergence diagnostics.
func tail(s string, off int) string {
	if off > len(s) {
		return ""
	}
	return s[off:]
}
