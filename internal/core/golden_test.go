package core

import (
	"testing"
)

// goldenSeeds are the extra seeds every experiment must survive beyond
// the canonical seed 42: the determinism contract is only credible if
// experiments also *run* everywhere, not just at the seed the paper's
// tables were generated from.
var goldenSeeds = []int64{7, 1001, 92821}

// TestGoldenDeterminismAllExperiments executes all registry experiments
// twice at seed 42 and asserts byte-identical reports — the sim
// kernel's "same seed ⇒ identical output" requirement, enforced
// end-to-end for every ID — then runs each at three distinct seeds
// asserting success and non-trivial output.
func TestGoldenDeterminismAllExperiments(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			first, err := e.Run(42)
			if err != nil {
				t.Fatalf("%s at seed 42: %v", e.ID, err)
			}
			second, err := e.Run(42)
			if err != nil {
				t.Fatalf("%s at seed 42 (second run): %v", e.ID, err)
			}
			if first != second {
				off := 0
				for off < len(first) && off < len(second) && first[off] == second[off] {
					off++
				}
				t.Fatalf("%s violates the determinism contract: reports diverge at byte %d\nfirst:  %.60q\nsecond: %.60q",
					e.ID, off, tail(first, off), tail(second, off))
			}
			for _, seed := range goldenSeeds {
				out, err := e.Run(seed)
				if err != nil {
					t.Fatalf("%s at seed %d: %v", e.ID, seed, err)
				}
				if len(out) < 40 {
					t.Errorf("%s at seed %d: output suspiciously short:\n%s", e.ID, seed, out)
				}
			}
		})
	}
}

// tail returns s from offset off, for divergence diagnostics.
func tail(s string, off int) string {
	if off > len(s) {
		return ""
	}
	return s[off:]
}
