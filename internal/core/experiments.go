package core

import (
	"fmt"
	"strings"

	"autosec/internal/canbus"
	"autosec/internal/ext"
	"autosec/internal/ranging"
	"autosec/internal/secchan"
	"autosec/internal/secchan/suites"
	"autosec/internal/sim"
	"autosec/internal/uwb"
	"autosec/internal/vcrypto"
)

// Experiment regenerates one figure or table of the paper.
type Experiment struct {
	ID     string
	Title  string
	Source string // which paper artefact it reproduces
	Run    func(rc *RunContext) (string, error)
	// Cost is a relative wall-time rank (higher = slower) measured on
	// the reference machine; the campaign pool uses it to dispatch the
	// long experiments first. It never affects results, only scheduling,
	// so the values need only be roughly ordered.
	Cost int
}

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	// Cost values are approximate per-run milliseconds measured serially
	// on the reference machine (seed 42); only their relative order
	// matters to the scheduler.
	return []Experiment{
		{ID: "fig1", Title: "Layered architecture and cross-layer posture", Source: "Fig. 1", Run: RunFig1, Cost: 1},
		{ID: "fig2", Title: "UWB ranging security (HRP / LRP)", Source: "Fig. 2", Run: RunFig2, Cost: 56},
		{ID: "fig3", Title: "Zonal IVN baseline", Source: "Fig. 3", Run: RunFig3, Cost: 1},
		{ID: "tab1", Title: "In-vehicle security protocol matrix", Source: "Table I", Run: RunTable1},
		{ID: "fig4", Title: "Scenario S1: SECOC + MACsec", Source: "Fig. 4", Run: RunFig4, Cost: 2},
		{ID: "fig5", Title: "Scenario S2: MACsec end-to-end vs point-to-point", Source: "Fig. 5", Run: RunFig5, Cost: 2},
		{ID: "fig6", Title: "Scenario S3: CANAL with end-to-end MACsec", Source: "Fig. 6", Run: RunFig6, Cost: 11},
		{ID: "fig7", Title: "SDV trust relations and reconfiguration", Source: "Fig. 7", Run: RunFig7, Cost: 3},
		{ID: "fig8", Title: "Telemetry-cloud kill chain", Source: "Fig. 8", Run: RunFig8, Cost: 32},
		{ID: "exp-stealth", Title: "Exfiltration stealth vs cloud monitoring", Source: "§V-B", Run: RunExpStealth, Cost: 13},
		{ID: "fig9", Title: "MaaS system-of-systems analysis", Source: "Fig. 9", Run: RunFig9, Cost: 31},
		{ID: "exp-ca", Title: "Collision avoidance under sensor attack", Source: "§II-B", Run: RunExpCA, Cost: 1100},
		{ID: "exp-collab", Title: "Collaborative perception & competition", Source: "§VII", Run: RunExpCollab},
		{ID: "exp-ids", Title: "Intrusion detection and response", Source: "§VIII", Run: RunExpIDS, Cost: 1},
		{ID: "exp-access", Title: "Owner-controlled data access (secret sharing)", Source: "§VIII ref[54]", Run: RunExpAccess},
		{ID: "exp-ptp", Title: "Time delay attack vs PTPsec", Source: "§VIII ref[53]", Run: RunExpPTP},
		{ID: "exp-v2x", Title: "Authenticated V2X with pseudonym privacy", Source: "§VII-B", Run: RunExpV2X, Cost: 3},
		{ID: "exp-ota", Title: "OTA update pipeline security", Source: "§IV-A", Run: RunExpOTA, Cost: 1},
		{ID: "exp-vehicle", Title: "Integrated full-vehicle network run", Source: "Fig. 3 (integrated)", Run: RunExpVehicle, Cost: 2},
		{ID: "exp-zc", Title: "Compromised zone controller capabilities", Source: "§III-A", Run: RunExpZCCompromise},
		{ID: "exp-tara", Title: "ISO/SAE 21434-style risk assessment", Source: "§VI", Run: RunExpTARA},
		{ID: "ablate-mac", Title: "Ablation: SECOC MAC truncation", Source: "design", Run: RunAblateMAC, Cost: 39},
		{ID: "ablate-fv", Title: "Ablation: freshness window vs loss", Source: "design", Run: RunAblateFV, Cost: 1},
		{ID: "ablate-sts", Title: "Ablation: STS length vs ghost peak", Source: "design", Run: RunAblateSTS, Cost: 61},
		{ID: "ablate-canal", Title: "Ablation: CANAL segment size", Source: "design", Run: RunAblateCANAL},
		{ID: "ablate-k", Title: "Ablation: redundancy k vs insider", Source: "design", Run: RunAblateRedundancy, Cost: 1},
		{ID: "ablate-ids", Title: "Ablation: sender-ID match radius", Source: "design", Run: RunAblateIDSThreshold, Cost: 6},
		{ID: "ablate-scale", Title: "Ablation: scenario costs vs endpoints per zone", Source: "design", Run: RunAblateScale},
	}
}

// ExperimentExtensions mirrors the experiment catalog into the
// extension kernel (ext kind "experiment"), so `avsec ext` and the
// daemon's extension listing cover the catalog with the same metadata
// shape as suites, attacks, defences, and detectors. The catalog
// itself stays the paper-ordered slice above — the registry is a
// read-only view, and the catalog feeds it, never the reverse.
var ExperimentExtensions = ext.NewRegistry[Experiment]("experiment")

func init() {
	for i, e := range Experiments() {
		ExperimentExtensions.Register(ext.Meta{
			Name:        e.ID,
			Description: e.Title,
			Paper:       e.Source,
			Caps:        []string{ext.CapCore},
			Rank:        i + 1,
		}, e)
	}
}

// RunFig1 regenerates Fig. 1: the layer inventory with threat/defence
// counts, plus the cross-layer findings an undefended and a partially
// defended posture expose.
func RunFig1(rc *RunContext) (string, error) {
	c, err := DefaultCatalog()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	tb := rc.Table("Fig. 1 — layered architecture of an autonomous system",
		"layer", "threats", "defences", "example threat")
	for _, l := range Layers() {
		threats := c.ThreatsAt(l)
		nDef := 0
		for _, d := range c.Defences() {
			if d.Layer == l {
				nDef++
			}
		}
		example := ""
		if len(threats) > 0 {
			example = threats[0].Name
		}
		tb.AddRow(l.String(), len(threats), nDef, example)
	}
	b.WriteString(tb.String())

	empty := NewPosture(c)
	paths := empty.AttackPaths()
	fmt.Fprintf(&b, "\nundefended posture: %d cross-layer attack paths to safety impact, e.g.\n", len(paths))
	rc.Metric("undefended posture", float64(len(paths)))
	for i, path := range paths {
		if i >= 3 {
			break
		}
		fmt.Fprintf(&b, "  %s\n", path)
	}

	// Single-layer hardening demonstration.
	dataOnly := NewPosture(c)
	if err := dataOnly.Deploy("D-no-debug", "D-secret-store", "D-least-priv", "D-minimize", "D-enum-defence"); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\ndata-layer-only hardening: %d paths remain (hardening one layer is insufficient)\n",
		len(dataOnly.AttackPaths()))
	rc.Metric("data-layer-only hardening", float64(len(dataOnly.AttackPaths())))

	full, err := FullDeployment(c)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "full multi-layer deployment: %d paths remain\n", len(full.AttackPaths()))
	rc.Metric("full multi-layer deployment", float64(len(full.AttackPaths())))

	// Synergy demonstration.
	noSyn := NewPosture(c)
	if err := noSyn.Deploy("D-secoc", "D-macsec", "D-v2x-auth", "D-misbehaviour"); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "synergy check: deploying {SECOC, MACsec, V2X auth, misbehaviour detection} without key management leaves %d of them ineffective: %v\n",
		len(noSyn.IneffectiveDeployments()), noSyn.IneffectiveDeployments())
	rc.Metric("synergy check", float64(len(noSyn.IneffectiveDeployments())))
	return b.String(), nil
}

// RunFig2 regenerates Fig. 2: both UWB ranging modes under benign and
// adversarial conditions, for naive and integrity-checked receivers.
func RunFig2(rc *RunContext) (string, error) {
	rng := rc.RNG()
	const trials = 40
	key := []byte("fig2-ranging-key")

	tb := rc.Table("Fig. 2 — UWB ranging modes under attack",
		"mode", "receiver", "attack", "accepted", "dist-manipulated", "mean-err-m")

	// Each trial is an independent replicate on its own serially
	// pre-forked RNG stream, so the sweep fans out over the worker pool;
	// the per-trial Session (and its scratch arena) is replicate-local.
	// Acceptance counters and the error mean are folded from the joined
	// measurements in trial order.
	hrp := func(secure bool, att uwb.Attacker, label, attackName string) error {
		ms := make([]uwb.Measurement, trials)
		err := rc.Replicates(trials, rng, func(i int, r *sim.RNG) error {
			s := uwb.Session{
				Key: key, Pulses: 256, Session: uint32(i),
				Channel:        uwb.Channel{DistanceM: 60, NoiseStd: 0.2},
				Config:         uwb.DefaultSecureConfig(),
				NaiveThreshold: 0.3,
				Secure:         secure,
			}
			m, err := s.Measure(att, r)
			ms[i] = m
			return err
		})
		if err != nil {
			return err
		}
		accepted, manipulated, errSum := 0, 0, 0.0
		for _, m := range ms {
			if m.Accepted {
				accepted++
				errSum += m.ErrorM()
				if m.ErrorM() < -5 || m.ErrorM() > 5 {
					manipulated++
				}
			}
		}
		mean := 0.0
		if accepted > 0 {
			mean = errSum / float64(accepted)
		}
		tb.AddRow("HRP", label, attackName, fmt.Sprintf("%d/%d", accepted, trials),
			fmt.Sprintf("%d/%d", manipulated, trials), mean)
		return nil
	}
	if err := hrp(false, nil, "naive", "none"); err != nil {
		return "", err
	}
	if err := hrp(true, nil, "secure", "none"); err != nil {
		return "", err
	}
	ghost := &uwb.GhostPeakAttacker{AdvanceSamples: 200, Power: 4}
	if err := hrp(false, ghost, "naive", "ghost-peak"); err != nil {
		return "", err
	}
	if err := hrp(true, ghost, "secure", "ghost-peak"); err != nil {
		return "", err
	}
	jam := &uwb.JamReplayAttacker{DelaySamples: 300, JamStd: 1.2, ReplayGain: 3}
	if err := hrp(false, jam, "naive", "jam-replay"); err != nil {
		return "", err
	}
	if err := hrp(true, jam, "secure", "jam-replay"); err != nil {
		return "", err
	}

	lrp := func(commitment bool, att *uwb.EDLCAttacker, label, attackName string) error {
		ms := make([]uwb.Measurement, trials)
		err := rc.Replicates(trials, rng, func(i int, r *sim.RNG) error {
			resp := make([]byte, 8)
			r.Bytes(resp)
			s := uwb.LRPSession{
				Channel:         uwb.Channel{DistanceM: 60, NoiseStd: 0.1},
				ResponseBits:    32,
				CommitmentCheck: commitment,
				MaxBitErrors:    1,
			}
			m, err := s.MeasureLRP(resp, att, r)
			ms[i] = m
			return err
		})
		if err != nil {
			return err
		}
		accepted, manipulated := 0, 0
		for _, m := range ms {
			if m.Accepted {
				accepted++
				if m.ErrorM() < -5 {
					manipulated++
				}
			}
		}
		tb.AddRow("LRP", label, attackName, fmt.Sprintf("%d/%d", accepted, trials),
			fmt.Sprintf("%d/%d", manipulated, trials), "-")
		return nil
	}
	if err := lrp(true, nil, "commitment", "none"); err != nil {
		return "", err
	}
	edlc := &uwb.EDLCAttacker{AdvanceSamples: 150, Power: 3}
	if err := lrp(false, edlc, "no-commitment", "ED/LC"); err != nil {
		return "", err
	}
	if err := lrp(true, edlc, "commitment", "ED/LC"); err != nil {
		return "", err
	}

	// Distance-bounding theory check alongside the signal model.
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\ndistance bounding (32 rounds): mafia-fraud guess acceptance theory %.2e, pre-ask %.2e\n",
		ranging.FraudSuccessProbability(ranging.MafiaFraudGuess, 32, 0),
		ranging.FraudSuccessProbability(ranging.MafiaFraudPreAsk, 32, 0))
	rc.Metric("distance bounding (32 rounds)", ranging.FraudSuccessProbability(ranging.MafiaFraudGuess, 32, 0))
	return b.String(), nil
}

// RunTable1 regenerates Table I with *measured* per-frame overheads of
// every implemented protocol on its medium. The rows come from the
// suite registry in paper order: each suite protects one sample
// payload and the table reports the observed wire expansion alongside
// the registered guarantee axes.
func RunTable1(rc *RunContext) (string, error) {
	rng := rc.RNG()
	payload := make([]byte, 16)
	rng.Bytes(payload)
	key := vcrypto.DeriveKey([]byte("table1-root-key!"), "k", "t", 16)

	tb := rc.Table("Table I — security protocols for in-vehicle communication (measured)",
		"ISO-OSI layer", "protocol", "media", "overhead-B", "auth", "conf", "replay-prot")

	for _, e := range suites.Registry() {
		s, err := e.New(secchan.Params{Key: key, RNG: rng})
		if err != nil {
			return "", err
		}
		// The batch entry point dispatches to each suite's native batched
		// fast path (contractually byte-identical to Protect).
		wires, err := secchan.ProtectBatch(s, [][]byte{payload}, nil)
		if err != nil {
			return "", err
		}
		wire := wires[0]
		auth, conf, replay := s.Properties().YesNo()
		tb.AddRow(s.Layer(), s.Name(), s.Media(), len(wire)-len(payload), auth, conf, replay)
	}

	var b strings.Builder
	b.WriteString(tb.String())
	// Wire-time context per medium.
	classic := &canbus.Frame{ID: 1, Format: canbus.Classic, Payload: make([]byte, 8)}
	xl := &canbus.Frame{ID: 1, Format: canbus.XL, Payload: make([]byte, 64)}
	fmt.Fprintf(&b, "\ncontext: classic CAN frame %d wire bits; CAN XL 64-B frame %d wire bits\n",
		classic.WireBits(), xl.WireBits())
	rc.Metric("context", float64(classic.WireBits()))
	return b.String(), nil
}

// scenarioTable builds the header shared by the Fig. 3–6 experiments.
func scenarioTable(rc *RunContext, title string) *sim.Table {
	return rc.Table(title,
		"scenario", "delivered", "p50-lat-µs", "overhead×", "keys@ZC", "ops@ZC", "forgeries", "replays")
}
