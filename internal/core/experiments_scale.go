package core

import (
	"strings"

	"autosec/internal/ivn"
)

// RunAblateScale sweeps the number of endpoints per zone and shows
// where the S1/S2/S3 cost curves diverge: point-to-point concentrates
// key storage and processing at the zone controller (O(n) keys, 2 ops
// per message), end-to-end designs move the key burden to the central
// computer and leave the gateway stateless.
func RunAblateScale(rc *RunContext) (string, error) {
	var b strings.Builder
	tb := rc.Table("ablation — scenario costs vs endpoints per zone (4-B payloads, measured overheads)",
		"endpoints", "scenario", "keys@ZC", "keys@CC", "ops/msg@ZC", "overhead-B/msg")
	for _, n := range []int{4, 16, 64, 256} {
		rows, err := ivn.Scaling(n, 4)
		if err != nil {
			return "", err
		}
		for _, r := range rows {
			tb.AddRow(n, r.Scenario, r.KeysZC, r.KeysCC, r.OpsZCPerMsg, r.BytesPerMsg)
		}
	}
	b.WriteString(tb.String())
	b.WriteString("\nzonal consolidation (more endpoints per controller) punishes S2-p2p linearly at the\n")
	b.WriteString("gateway; the e2e designs (S2-e2e, S3) keep the gateway stateless at the price of per-\n")
	b.WriteString("endpoint key state in the central computer — where HSM capacity actually exists.\n")
	return b.String(), nil
}
