package core

import (
	"fmt"
	"strings"

	"autosec/internal/killchain"
	"autosec/internal/sdv"
	"autosec/internal/sim"
	"autosec/internal/sos"
	"autosec/internal/ssi"
	"autosec/internal/telemetry"
)

// RunFig7 regenerates Fig. 7: the SDV trust relations — multi-anchor
// credential issuance, mutually authenticated placement, failover, and
// a revoked (compromised) update that cannot land.
func RunFig7(rc *RunContext) (string, error) {
	mkKey := func(b byte) (*ssi.KeyPair, error) {
		s := make([]byte, 32)
		for i := range s {
			s[i] = b
		}
		return ssi.GenerateKeyPair(s)
	}
	oem, err := mkKey(byte(rc.Seed%200) + 1)
	if err != nil {
		return "", err
	}
	vendor, err := mkKey(byte(rc.Seed%200) + 2)
	if err != nil {
		return "", err
	}
	cloud, err := mkKey(byte(rc.Seed%200) + 3)
	if err != nil {
		return "", err
	}

	reg := ssi.NewRegistry()
	trust := ssi.NewTrustRegistry()
	trust.AddAnchor(sdv.CredPlatformAttest, oem.DID)
	trust.AddAnchor(sdv.CredSoftwareApproval, vendor.DID)
	trust.AddAnchor(sdv.CredHardwareCompat, vendor.DID)
	trust.AddAnchor(sdv.CredCloudService, cloud.DID)
	for _, k := range []*ssi.KeyPair{oem, vendor, cloud} {
		if err := reg.Register(ssi.NewDocument(k)); err != nil {
			return "", err
		}
	}
	verifier := ssi.NewVerifier(reg, trust)
	revocations := ssi.NewRevocationList(vendor, 0)
	if err := verifier.AddRevocationList(revocations); err != nil {
		return "", err
	}
	mgr := sdv.NewManager(verifier)

	var b strings.Builder
	b.WriteString("Fig. 7 — software-defined vehicle trust relations\n")
	fmt.Fprintf(&b, "  trust anchors: OEM=%s…  vendor=%s…  cloud=%s…\n\n", oem.DID[:16], vendor.DID[:16], cloud.DID[:16])

	// Two hardware nodes attested by the OEM.
	for i, id := range []string{"zc-left", "zc-right"} {
		k, err := mkKey(byte(rc.Seed%200) + 10 + byte(i))
		if err != nil {
			return "", err
		}
		if err := reg.Register(ssi.NewDocument(k)); err != nil {
			return "", err
		}
		att, err := ssi.Issue(oem, &ssi.Credential{
			ID: "att-" + id, Type: sdv.CredPlatformAttest,
			Issuer: oem.DID, Subject: k.DID,
			Claims: map[string]string{"platform": "zc-gen3"}, IssuedAt: 0,
		})
		if err != nil {
			return "", err
		}
		n := &sdv.HardwareNode{ID: id, Identity: k, Platform: "zc-gen3", Capacity: 8, Attestation: att}
		if err := mgr.AddNode(n); err != nil {
			return "", err
		}
	}

	// Brake controller from the vendor.
	ck, err := mkKey(byte(rc.Seed%200) + 20)
	if err != nil {
		return "", err
	}
	if err := reg.Register(ssi.NewDocument(ck)); err != nil {
		return "", err
	}
	issue := func(id, typ, version string) (*ssi.Credential, error) {
		claims := map[string]string{"version": version}
		if typ == sdv.CredHardwareCompat {
			claims["platform"] = "zc-gen3"
		}
		return ssi.Issue(vendor, &ssi.Credential{
			ID: id, Type: typ, Issuer: vendor.DID, Subject: ck.DID,
			Claims: claims, IssuedAt: 0,
		})
	}
	appr, err := issue("appr-2.1", sdv.CredSoftwareApproval, "2.1")
	if err != nil {
		return "", err
	}
	compat, err := issue("compat-2.1", sdv.CredHardwareCompat, "2.1")
	if err != nil {
		return "", err
	}
	comp := &sdv.SoftwareComponent{ID: "brake-ctrl", Identity: ck, Version: "2.1", Units: 4,
		Approval: appr, Compat: []*ssi.Credential{compat}}
	if err := mgr.AddComponent(comp); err != nil {
		return "", err
	}

	if err := mgr.Place("brake-ctrl", "zc-left", 100); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "place brake-ctrl@2.1 on zc-left: OK (mutual SSI authentication)\n")

	relocated, stranded, err := mgr.FailNode("zc-left", 200)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "zc-left fails: relocated=%v stranded=%v → now on %s\n", relocated, stranded, mgr.PlacementOf("brake-ctrl"))

	// Compromised update: the vendor revokes 2.2's approval.
	appr22, err := issue("appr-2.2", sdv.CredSoftwareApproval, "2.2")
	if err != nil {
		return "", err
	}
	compat22, err := issue("compat-2.2", sdv.CredHardwareCompat, "2.2")
	if err != nil {
		return "", err
	}
	if err := revocations.Revoke(vendor, "appr-2.2", 250); err != nil {
		return "", err
	}
	if err := verifier.AddRevocationList(revocations); err != nil {
		return "", err
	}
	updateErr := mgr.Update("brake-ctrl", "2.2", appr22, []*ssi.Credential{compat22}, 300)
	fmt.Fprintf(&b, "update to revoked 2.2 rejected=%v (component stays at %s)\n", updateErr != nil, comp.Version)

	b.WriteString("\naudit log:\n")
	for _, l := range mgr.Log {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String(), nil
}

// RunFig8 regenerates Fig. 8: the kill chain under every single-defence
// configuration plus none/all, quantifying where the chain breaks.
func RunFig8(rc *RunContext) (string, error) {
	rng := rc.RNG()
	const fleet, points = 200, 40

	tb := rc.Table("Fig. 8 — CARIAD-style telemetry kill chain vs defences",
		"defences", "chain-broken-at", "records", "vehicles", "precision-m", "personal-data")

	type kcCase struct {
		label string
		cfg   telemetry.Config
	}
	cases := []kcCase{{"none (the incident)", telemetry.WorstCase()}}
	for _, d := range killchain.Defences() {
		cases = append(cases, kcCase{d.String(), killchain.Apply(d)})
	}
	cases = append(cases, kcCase{"all", killchain.Apply(killchain.Defences()...)})

	// One kill-chain trial per defence configuration, fanned out over
	// the replicate pool; rows are written after the join, in case
	// order, so the table is bit-identical to the serial loop.
	reps := make([]*killchain.Report, len(cases))
	err := rc.Replicates(len(cases), rng, func(i int, r *sim.RNG) error {
		cloud := telemetry.NewCloud(cases[i].cfg, fleet, points, r)
		reps[i] = killchain.Run(cloud)
		return nil
	})
	if err != nil {
		return "", err
	}
	for i, rep := range reps {
		broken := "— (breached)"
		if !rep.Breached {
			broken = rep.Stages[len(rep.Stages)-1].Stage.String()
		}
		tb.AddRow(cases[i].label, broken, rep.RecordsExfiltrated, rep.VehiclesAffected, rep.PrecisionM, rep.PersonalData)
	}

	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nfull trace of the undefended chain:\n")
	cloud := telemetry.NewCloud(telemetry.WorstCase(), fleet, points, rng.Fork())
	rep := killchain.Run(cloud)
	b.WriteString(rep.String())
	if rep.Breached {
		rc.Metric("BREACH", float64(rep.RecordsExfiltrated))
	}
	return b.String(), nil
}

// RunExpStealth operationalizes §V-B takeaway 1 — "lack of incidents is
// not an indication of security": identical data theft, loud vs
// patient, against a cloud with monitoring enabled.
func RunExpStealth(rc *RunContext) (string, error) {
	rng := rc.RNG()
	tb := rc.Table("§V-B — exfiltration strategy vs cloud monitoring (200-vehicle fleet)",
		"strategy", "records", "vehicles", "detected", "alerts", "logical-steps")
	strategies := []killchain.ExfilStrategy{killchain.BulkExfil, killchain.LowAndSlow}
	reps := make([]*killchain.StealthReport, len(strategies))
	err := rc.Replicates(len(strategies), rng, func(i int, r *sim.RNG) error {
		cloud := telemetry.NewCloud(telemetry.WorstCase(), 200, 40, r)
		cloud.AttachMonitor(telemetry.DefaultMonitor())
		rep, err := killchain.RunStealthExfil(cloud, strategies[i])
		reps[i] = rep
		return err
	})
	if err != nil {
		return "", err
	}
	for i, rep := range reps {
		tb.AddRow(strategies[i].String(), rep.RecordsExfiltrated, rep.VehiclesAffected,
			rep.Detected, len(rep.Alerts), rep.StepsTaken)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nthe patient attacker steals the identical fleet without one alert — systems that look\n")
	b.WriteString("incident-free may simply host attackers who choose not to be incidents (§V-B-1).\n")
	return b.String(), nil
}

// RunFig9 regenerates Fig. 9: the MaaS system-of-systems inventory,
// per-level attack surface, responsibility gaps, and cascade risk from
// each entry point before and after boundary hardening.
func RunFig9(rc *RunContext) (string, error) {
	m, err := sos.BuildMaaS()
	if err != nil {
		return "", err
	}
	var b strings.Builder

	inv := rc.Table("Fig. 9 — AV MaaS system of systems (levels 0–3)",
		"level", "systems", "interfaces", "external", "external-by-kind")
	for _, r := range m.AttackSurface() {
		kinds := ""
		for _, k := range []sos.InterfaceKind{sos.PhysicalPort, sos.SensorInput, sos.WirelessLink, sos.BackendAPI, sos.HumanInterface} {
			if n := r.ByKind[k]; n > 0 {
				kinds += fmt.Sprintf("%s:%d ", k, n)
			}
		}
		inv.AddRow(r.Level, r.Systems, r.Interfaces, r.ExternalInterfaces, strings.TrimSpace(kinds))
	}
	b.WriteString(inv.String())

	unowned, cross := m.ResponsibilityGaps()
	fmt.Fprintf(&b, "\nresponsibility gaps: %d links have no security owner (of %d cross-stakeholder links):\n", len(unowned), len(cross))
	rc.Metric("responsibility gaps", float64(len(unowned)))
	for _, l := range unowned {
		fmt.Fprintf(&b, "  %s → %s\n", l.From, l.To)
	}

	rng := rc.RNG()
	casc := rc.Table("cascade risk (10000 trials per entry)",
		"entry", "mean-compromised", "P(safety-critical)", "hardened-mean", "hardened-P")
	entries := []string{"backend", "hub", "passenger-os", "sense"}
	// Each entry's (before, after) cascades are two replicate units, in
	// the same order the serial loop forked RNGs for them: unit 2k runs
	// the baseline model (Cascade is read-only on the shared m), unit
	// 2k+1 builds its own hardened model — deterministic, no RNG — and
	// cascades from the same entry.
	cascades := make([]sos.CascadeResult, 2*len(entries))
	err = rc.Replicates(2*len(entries), rng, func(i int, r *sim.RNG) error {
		entry := entries[i/2]
		model := m
		if i%2 == 1 {
			hardened, err := sos.BuildMaaS()
			if err != nil {
				return err
			}
			if _, err := hardened.Harden(0.3, "unified-security-owner"); err != nil {
				return err
			}
			model = hardened
		}
		res, err := model.Cascade(entry, 10000, r)
		cascades[i] = res
		return err
	})
	if err != nil {
		return "", err
	}
	for k, entry := range entries {
		before, after := cascades[2*k], cascades[2*k+1]
		casc.AddRow(entry, before.MeanCompromised, before.SafetyCriticalProb, after.MeanCompromised, after.SafetyCriticalProb)
	}
	b.WriteString("\n")
	b.WriteString(casc.String())
	return b.String(), nil
}
