package core

import (
	"fmt"
	"strings"

	"autosec/internal/canbus"
	"autosec/internal/collab"
	"autosec/internal/ids"
	"autosec/internal/sensor"
	"autosec/internal/sim"
	"autosec/internal/world"
)

// RunExpCA reproduces the §II-B collision-avoidance claims: sensor
// attacks against naive, consensus, and ranging-verified fusion.
func RunExpCA(rc *RunContext) (string, error) {
	rng := rc.RNG()
	key := []byte("exp-ca-range-key")
	const encounters = 20

	tb := rc.Table("§II-B — collision avoidance under sensor attack (20 encounters each)",
		"fusion", "attack", "collisions", "phantom-brakes", "braked")

	ghost := func() *sensor.Attack {
		g := world.Vec2{X: 20}
		return &sensor.Attack{Target: sensor.Radar, GhostAt: &g}
	}
	removal := &sensor.Attack{Target: sensor.Lidar, RemoveID: "lead"}
	enlarge := &sensor.Attack{EnlargeM: 40}

	type study struct {
		policy sensor.FusionPolicy
		attack *sensor.Attack
		name   string
		// farGap puts the real lead far away so any braking is phantom.
		farGap bool
	}
	studies := []study{
		{sensor.NaiveFusion, nil, "none", false},
		{sensor.ConsensusFusion, nil, "none", false},
		{sensor.VerifiedFusion, nil, "none", false},
		{sensor.NaiveFusion, ghost(), "ghost", true},
		{sensor.ConsensusFusion, ghost(), "ghost", true},
		{sensor.NaiveFusion, removal, "removal", false},
		{sensor.ConsensusFusion, removal, "removal", false},
		{sensor.VerifiedFusion, enlarge, "enlarge", false},
	}
	for _, st := range studies {
		// Replicate fan-out: each encounter runs on its own serially
		// pre-forked RNG; the counters are tallied from the joined
		// results in index order, so the row is bit-identical to the
		// serial loop at any worker count.
		results := make([]sensor.EncounterResult, encounters)
		err := rc.Replicates(encounters, rng, func(i int, r *sim.RNG) error {
			cfg := sensor.DefaultEncounter(st.policy, st.attack)
			if st.farGap {
				cfg.InitialGapM = 300
			}
			res, err := sensor.RunEncounter(cfg, key, r)
			results[i] = res
			return err
		})
		if err != nil {
			return "", err
		}
		collisions, phantoms, braked := 0, 0, 0
		for _, res := range results {
			if res.Collided {
				collisions++
			}
			if res.FalseBrake {
				phantoms++
			}
			if res.Braked {
				braked++
			}
		}
		tb.AddRow(st.policy.String(), st.name, collisions, phantoms, braked)
	}
	// Cut-in scenario: the dangerous 2-D variant where late detection
	// hurts most.
	cutIn := rc.Table("cut-in from adjacent lane (20 encounters each)",
		"fusion", "attack", "collisions", "reacted")
	for _, st := range []struct {
		policy sensor.FusionPolicy
		attack *sensor.Attack
		name   string
	}{
		{sensor.ConsensusFusion, nil, "none"},
		{sensor.ConsensusFusion, removal, "removal"},
		{sensor.VerifiedFusion, nil, "none"},
	} {
		results := make([]sensor.EncounterResult, encounters)
		err := rc.Replicates(encounters, rng, func(i int, r *sim.RNG) error {
			res, err := sensor.RunCutIn(sensor.DefaultCutIn(st.policy, st.attack), key, r)
			results[i] = res
			return err
		})
		if err != nil {
			return "", err
		}
		collisions, reacted := 0, 0
		for _, res := range results {
			if res.Collided {
				collisions++
			}
			if res.Braked {
				reacted++
			}
		}
		cutIn.AddRow(st.policy.String(), st.name, collisions, reacted)
	}

	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\n")
	b.WriteString(cutIn.String())
	b.WriteString("\nsingle-modality ghosts cause phantom braking only under naive fusion; removal from one\n")
	b.WriteString("modality is absorbed by consensus; distance enlargement is caught by the integrity-checked\n")
	b.WriteString("ranging channel (fail-safe: the consensus range is kept).\n")
	return b.String(), nil
}

// RunExpCollab reproduces §VII: fabrication detection in collaborative
// perception and the competing-agents intersection study.
func RunExpCollab(rc *RunContext) (string, error) {
	rng := rc.RNG()
	var b strings.Builder

	// --- perception ---
	build := func() (*world.World, map[string]*collab.Participant, error) {
		w := world.New()
		members := map[string]*collab.Participant{}
		for i, x := range []float64{0, 20, 40, 60} {
			id := string(rune('a' + i))
			if err := w.Add(&world.Actor{ID: id, Pos: world.Vec2{X: x}, Radius: 1}); err != nil {
				return nil, nil, err
			}
			members[id] = &collab.Participant{ID: id, SensorRange: 50, NoiseStd: 0.1}
		}
		if err := w.Add(&world.Actor{ID: "ped", Pos: world.Vec2{X: 30, Y: 4}, Radius: 0.4}); err != nil {
			return nil, nil, err
		}
		return w, members, nil
	}
	share := func(w *world.World, members map[string]*collab.Participant, external bool) []collab.Message {
		var msgs []collab.Message
		for _, id := range []string{"a", "b", "c", "d"} {
			msgs = append(msgs, members[id].Share(w, rng))
		}
		if external {
			msgs = append(msgs, collab.Message{Sender: "roadside-ghost", Authenticated: false,
				Claims: []collab.Claim{{Sender: "roadside-ghost", Pos: world.Vec2{X: 30, Y: 0}}}})
		}
		return msgs
	}

	tb := rc.Table("§VII-B — collaborative perception under attack (per round)",
		"attacker", "channel/fusion", "fakes-accepted", "real-accepted", "missed-real")
	type cfgCase struct {
		name     string
		external bool
		insider  bool
		cfg      collab.FusionConfig
	}
	fake := world.Vec2{X: 35}
	cases := []cfgCase{
		{"external", true, false, collab.FusionConfig{RequireAuth: false}},
		{"external", true, false, collab.FusionConfig{RequireAuth: true}},
		{"insider", false, true, collab.FusionConfig{RequireAuth: true}},
		{"insider", false, true, collab.FusionConfig{RequireAuth: true, RedundancyK: 2}},
	}
	labels := []string{"open/naive", "auth/naive", "auth/naive", "auth/redundancy-2"}
	for i, tc := range cases {
		w, members, err := build()
		if err != nil {
			return "", err
		}
		if tc.insider {
			members["b"].Fabricate = &fake
		}
		out := collab.Fuse(w, share(w, members, tc.external), members, tc.cfg)
		tb.AddRow(tc.name, labels[i], out.FakeCount, out.RealCount, out.MissedReal)
	}
	b.WriteString(tb.String())

	// Trust convergence against the insider.
	w, members, err := build()
	if err != nil {
		return "", err
	}
	members["b"].Fabricate = &fake
	tracker := collab.NewTrustTracker()
	cfg := collab.FusionConfig{RequireAuth: true, RedundancyK: 2}
	rounds := 0
	for !tracker.Excluded("b") && rounds < 50 {
		tracker.Observe(w, share(w, members, false), members, cfg)
		rounds++
	}
	fmt.Fprintf(&b, "\ninsider excluded by trust tracking: %d rounds (final score %.2f)\n\n", rounds, tracker.Score("b"))
	rc.Metric("insider excluded by trust tracking", float64(rounds))

	// --- intersection competition ---
	it := rc.Table("§VII-A — intersection competition (30 vehicles)",
		"policy", "crossed", "collisions", "deadlocked", "ticks", "mean-wait", "max-wait")
	policies := []collab.Policy{collab.Cooperative, collab.SelfInterested, collab.OverCautious, collab.Regulated}
	runs := make([]collab.IntersectionResult, len(policies))
	err = rc.Replicates(len(policies), rng, func(i int, r *sim.RNG) error {
		res, err := collab.RunIntersection(collab.DefaultIntersection(policies[i], 30), r)
		runs[i] = res
		return err
	})
	if err != nil {
		return "", err
	}
	for i, res := range runs {
		it.AddRow(policies[i].String(), res.Crossed, res.Collisions, res.Deadlocked, res.Ticks, res.MeanWait, res.MaxWait)
	}
	b.WriteString(it.String())
	return b.String(), nil
}

// RunExpIDS reproduces §VIII: detection and response against masquerade
// and flooding on CAN.
func RunExpIDS(rc *RunContext) (string, error) {
	var b strings.Builder
	tb := rc.Table("§VIII — intrusion detection & response on CAN",
		"response-mode", "alerts", "masquerader-isolated", "containment-ms", "rekeys")

	for _, action := range []ids.ResponseAction{ids.AlertOnly, ids.Isolate, ids.IsolateAndRekey} {
		k := rc.Kernel()
		bus := canbus.NewBus("zone", canbus.DefaultBitRates(), k)
		bus.Attach(&canbus.NodeFunc{ID: "rx"})
		engine := ids.NewEngine(action, k)
		engine.SenderID().Enroll(0x0C0, "engine")
		engine.SenderID().KnowNode("infotainment")
		engine.Attach(bus)

		// Training phase: 30 clean periodic frames.
		for i := 0; i < 30; i++ {
			at := sim.Time(i+1) * 10 * sim.Millisecond
			k.Schedule(at, "legit", func(k *sim.Kernel) {
				_ = bus.Send("engine", &canbus.Frame{ID: 0x0C0, Format: canbus.Classic, Payload: []byte{1}})
			})
		}
		k.Schedule(305*sim.Millisecond, "end-training", func(*sim.Kernel) {
			engine.Interval().EndTraining()
		})
		// Attack phase: masquerade injections between legit frames.
		attackStart := sim.Time(310) * sim.Millisecond
		for i := 0; i < 30; i++ {
			at := attackStart + sim.Time(i)*10*sim.Millisecond
			k.Schedule(at, "legit", func(k *sim.Kernel) {
				_ = bus.Send("engine", &canbus.Frame{ID: 0x0C0, Format: canbus.Classic, Payload: []byte{1}})
			})
			k.Schedule(at+2*sim.Millisecond, "masq", func(k *sim.Kernel) {
				_ = bus.Send("infotainment", &canbus.Frame{ID: 0x0C0, Format: canbus.Classic, Payload: []byte{0xFF}})
			})
		}
		if err := k.Run(0); err != nil {
			return "", err
		}
		containment := "-"
		if at, ok := engine.ContainedAt["infotainment"]; ok {
			containment = fmt.Sprintf("%.1f", float64(at-attackStart)/float64(sim.Millisecond))
		}
		tb.AddRow(action.String(), len(engine.Alerts()), engine.Isolated("infotainment"), containment, engine.Rekeys())
	}
	b.WriteString(tb.String())
	b.WriteString("\nthe sender-identification detector attributes masquerade frames to the physical\n")
	b.WriteString("transmitter (EASI-style analog fingerprint), enabling targeted isolation within milliseconds.\n")
	return b.String(), nil
}
