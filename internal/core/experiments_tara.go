package core

import (
	"fmt"
	"strings"

	"autosec/internal/canbus"
	"autosec/internal/ids"
	"autosec/internal/sim"
	"autosec/internal/tara"
)

// RunExpTARA reproduces the regulatory angle of §VI: an ISO/SAE
// 21434-style risk worksheet for the vehicle, before and after the
// framework's technical controls are applied as treatments.
func RunExpTARA(rc *RunContext) (string, error) {
	var b strings.Builder
	render := func(title string, a *tara.Analysis) {
		tb := rc.Table(title,
			"threat scenario", "asset", "impact", "feasibility", "risk", "decision", "control")
		for _, r := range a.Worksheet() {
			tb.AddRow(r.Scenario, r.Asset, r.Impact.String(), r.Feasibility.String(), int(r.Risk), r.Decision, r.Treatment)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}

	before, err := tara.BuildVehicleTARA(false)
	if err != nil {
		return "", err
	}
	render("§VI — TARA worksheet, untreated vehicle", before)

	after, err := tara.BuildVehicleTARA(true)
	if err != nil {
		return "", err
	}
	render("after applying the framework's controls", after)

	sumRisk := func(a *tara.Analysis) int {
		total := 0
		for _, r := range a.Worksheet() {
			total += int(r.Risk)
		}
		return total
	}
	fmt.Fprintf(&b, "aggregate risk: %d before → %d after treatment\n", sumRisk(before), sumRisk(after))
	rc.Metric("aggregate risk", float64(sumRisk(before)))
	fmt.Fprintf(&b, "mandatory reductions remaining: %d → %d\n",
		len(before.ResidualAboveThreshold(3)), len(after.ResidualAboveThreshold(3)))
	rc.Metric("mandatory reductions remaining", float64(len(before.ResidualAboveThreshold(3))))
	return b.String(), nil
}

// RunAblateIDSThreshold sweeps the sender-identification match radius:
// too tight and analog noise causes false positives on the legitimate
// transmitter; too loose and masquerade frames slip through. The sweep
// produces the detector's operating curve.
func RunAblateIDSThreshold(rc *RunContext) (string, error) {
	rng := rc.RNG()
	const frames = 400

	tb := rc.Table("ablation — sender-ID match radius (400 legit + 400 masquerade frames)",
		"radius", "false-positive-rate", "miss-rate")
	for _, radius := range []float64{0.02, 0.05, 0.10, 0.25, 0.50, 0.80, 1.20} {
		s := ids.NewSenderIdentifier(rng.Fork())
		s.MatchRadius = radius
		s.Enroll(0x0C0, "engine")
		s.KnowNode("infotainment")

		fp, miss := 0, 0
		for i := 0; i < frames; i++ {
			legit := &canbus.Frame{ID: 0x0C0, Format: canbus.Classic, Payload: []byte{1}, SourceID: "engine"}
			if a := s.Observe(sim.Time(i), legit); a != nil {
				fp++
			}
			masq := &canbus.Frame{ID: 0x0C0, Format: canbus.Classic, Payload: []byte{1}, SourceID: "infotainment"}
			if a := s.Observe(sim.Time(i), masq); a == nil {
				miss++
			}
		}
		tb.AddRow(radius, float64(fp)/frames, float64(miss)/frames)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\ntight radii drown in analog measurement noise (false positives on the legitimate sender);\n")
	b.WriteString("the default 0.25 sits on the flat part of the curve. Misses would appear once the radius\n")
	b.WriteString("reaches the distance between the two nodes' signatures — for this well-separated pair the\n")
	b.WriteString("whole swept range stays miss-free, which is exactly why analog fingerprints work as an IDS.\n")
	return b.String(), nil
}
