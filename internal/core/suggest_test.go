package core

import (
	"strings"
	"testing"
)

func TestSuggestExperiments(t *testing.T) {
	cases := []struct {
		id    string
		first string // expected top suggestion
	}{
		{"fig88", "fig8"},
		{"ifg8", "fig8"},
		{"exp-pt", "exp-ptp"},
		{"exp-tara2", "exp-tara"},
		{"ablate-macs", "ablate-mac"},
		{"exp", "exp-ca"}, // prefix match: first exp-* in registry order
	}
	for _, c := range cases {
		got := SuggestExperiments(c.id, 3)
		if len(got) == 0 || got[0] != c.first {
			t.Errorf("SuggestExperiments(%q) = %v, want first %q", c.id, got, c.first)
		}
		if len(got) > 3 {
			t.Errorf("SuggestExperiments(%q) returned %d ids, max is 3", c.id, len(got))
		}
	}
}

func TestSuggestExperimentsGarbageYieldsNothing(t *testing.T) {
	// A wildly wrong id must not produce noise suggestions.
	if got := SuggestExperiments("zzzzzzzzzzzzzzzz", 3); len(got) != 0 {
		t.Errorf("SuggestExperiments(garbage) = %v, want none", got)
	}
}

func TestUnknownExperimentError(t *testing.T) {
	_, err := RunExperiment("fig88", 42)
	if err == nil {
		t.Fatal("unknown id must fail")
	}
	msg := err.Error()
	for _, want := range []string{`unknown experiment "fig88"`, "did you mean", "fig8", "avsec list"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not contain %q", msg, want)
		}
	}
	if _, err := RunExperimentResult("fig88", 42, RunOptions{}); err == nil {
		t.Fatal("RunExperimentResult with unknown id must fail")
	}
}

func TestSuggestIDsMergedNamespace(t *testing.T) {
	// The CLI feeds SuggestIDs the union of registry and scenario ids;
	// nearest-first ordering and the noise cutoff must hold over any
	// candidate slice, not just the registry.
	ids := []string{"fig8", "scn-replay-probe", "scn-forge-edge"}
	if got := SuggestIDs("scn-replay-prob", ids, 3); len(got) == 0 || got[0] != "scn-replay-probe" {
		t.Errorf("SuggestIDs scenario typo = %v, want scn-replay-probe first", got)
	}
	if got := SuggestIDs("fig9", ids, 3); len(got) == 0 || got[0] != "fig8" {
		t.Errorf("SuggestIDs(fig9) = %v, want fig8 first", got)
	}
	// Prefix matches surface even past the distance cutoff.
	if got := SuggestIDs("scn-", ids, 3); len(got) != 2 {
		t.Errorf("SuggestIDs(prefix scn-) = %v, want both scenario ids", got)
	}
	if got := SuggestIDs("zzzzzzzzzzzz", ids, 3); len(got) != 0 {
		t.Errorf("SuggestIDs(garbage) = %v, want none", got)
	}
}
