package core

import (
	"strings"
	"testing"
)

func catalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultCatalogCoversAllLayers(t *testing.T) {
	t.Parallel()
	c := catalog(t)
	for _, l := range Layers() {
		if len(c.ThreatsAt(l)) == 0 {
			t.Errorf("layer %v has no threats", l)
		}
	}
	if len(c.Threats()) < 20 {
		t.Errorf("only %d threats", len(c.Threats()))
	}
	if len(c.Defences()) < 20 {
		t.Errorf("only %d defences", len(c.Defences()))
	}
}

func TestCatalogValidation(t *testing.T) {
	t.Parallel()
	c := NewCatalog()
	if err := c.AddThreat(&Threat{}); err == nil {
		t.Error("empty threat ID accepted")
	}
	if err := c.AddThreat(&Threat{ID: "t1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddThreat(&Threat{ID: "t1"}); err == nil {
		t.Error("duplicate threat accepted")
	}
	if err := c.AddDefence(&Defence{ID: "d1", Mitigates: []string{"missing"}}); err == nil {
		t.Error("defence against unknown threat accepted")
	}
	if err := c.AddDefence(&Defence{}); err == nil {
		t.Error("empty defence ID accepted")
	}
	_ = c.AddThreat(&Threat{ID: "t2", Enables: []string{"ghost"}})
	if err := c.Validate(); err == nil {
		t.Error("dangling Enables edge passed validation")
	}
}

func TestFullDeploymentMitigatesEverything(t *testing.T) {
	t.Parallel()
	c := catalog(t)
	p, err := FullDeployment(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, threat := range c.Threats() {
		if !p.Mitigated(threat.ID) {
			t.Errorf("threat %s unmitigated under full deployment", threat.ID)
		}
	}
	if paths := p.AttackPaths(); len(paths) != 0 {
		t.Errorf("full deployment leaves %d attack paths, e.g. %s", len(paths), paths[0])
	}
	if bad := p.IneffectiveDeployments(); len(bad) != 0 {
		t.Errorf("ineffective deployments: %v", bad)
	}
}

func TestEmptyPostureHasSafetyPaths(t *testing.T) {
	t.Parallel()
	c := catalog(t)
	p := NewPosture(c)
	paths := p.AttackPaths()
	if len(paths) == 0 {
		t.Fatal("undefended system shows no attack paths")
	}
	// The CARIAD-style chain must appear: enumeration → heap dump →
	// key leak → fleet exfiltration.
	found := false
	for _, path := range paths {
		if strings.Contains(path.String(), "T-dir-enum → T-heapdump → T-key-leak → T-fleet-exfil") {
			found = true
		}
	}
	if !found {
		t.Error("data-layer kill chain not found in attack paths")
	}
}

func TestSynergyDependencyDisablesDefence(t *testing.T) {
	t.Parallel()
	c := catalog(t)
	p := NewPosture(c)
	// SECOC without key management is deployed but ineffective — the
	// §VIII synergy point.
	if err := p.Deploy("D-secoc"); err != nil {
		t.Fatal(err)
	}
	if p.Effective("D-secoc") {
		t.Error("SECOC effective without key management")
	}
	if p.Mitigated("T-masquerade") {
		t.Error("masquerade mitigated by an ineffective defence")
	}
	if got := p.IneffectiveDeployments(); len(got) != 1 || got[0] != "D-secoc" {
		t.Errorf("ineffective = %v", got)
	}
	if err := p.Deploy("D-key-mgmt"); err != nil {
		t.Fatal(err)
	}
	if !p.Effective("D-secoc") {
		t.Error("SECOC still ineffective with its dependency met")
	}
	if !p.Mitigated("T-masquerade") {
		t.Error("masquerade not mitigated")
	}
}

func TestTransitiveSynergy(t *testing.T) {
	t.Parallel()
	c := catalog(t)
	p := NewPosture(c)
	// D-misbehaviour requires D-v2x-auth which requires D-key-mgmt.
	if err := p.Deploy("D-misbehaviour", "D-v2x-auth"); err != nil {
		t.Fatal(err)
	}
	if p.Effective("D-misbehaviour") {
		t.Error("transitive dependency ignored")
	}
	if err := p.Deploy("D-key-mgmt"); err != nil {
		t.Fatal(err)
	}
	if !p.Effective("D-misbehaviour") {
		t.Error("misbehaviour detection ineffective with full chain deployed")
	}
}

func TestCoverageByLayer(t *testing.T) {
	t.Parallel()
	c := catalog(t)
	p := NewPosture(c)
	// Full data-layer hardening: D-secret-sharing needs key management
	// (software-platform layer), which is exactly the cross-layer
	// synergy the framework must surface.
	if err := p.Deploy("D-no-debug", "D-secret-store", "D-least-priv", "D-minimize", "D-enum-defence",
		"D-secret-sharing", "D-key-mgmt"); err != nil {
		t.Fatal(err)
	}
	cov := p.CoverageByLayer()
	if len(cov) != int(layerCount) {
		t.Fatalf("%d layers", len(cov))
	}
	dataCov := cov[Data]
	if dataCov.Mitigated != dataCov.Threats {
		t.Errorf("data layer %d/%d after full data hardening", dataCov.Mitigated, dataCov.Threats)
	}
	if cov[Physical].Mitigated != 0 {
		t.Errorf("physical layer mitigated %d with no physical defences", cov[Physical].Mitigated)
	}
}

func TestSingleLayerHardeningLeavesCrossLayerPaths(t *testing.T) {
	t.Parallel()
	// The paper's core argument: hardening one layer is not enough.
	c := catalog(t)
	p := NewPosture(c)
	if err := p.Deploy("D-no-debug", "D-secret-store", "D-least-priv", "D-minimize", "D-enum-defence"); err != nil {
		t.Fatal(err)
	}
	paths := p.AttackPaths()
	if len(paths) == 0 {
		t.Fatal("data-layer-only hardening closed every attack path (it must not)")
	}
	crossLayer := false
	for _, path := range paths {
		layers := map[Layer]bool{}
		for _, id := range path {
			layers[c.Threat(id).Layer] = true
		}
		if len(layers) > 1 {
			crossLayer = true
		}
	}
	if !crossLayer {
		t.Error("no cross-layer path found")
	}
}

func TestDeployUnknownDefence(t *testing.T) {
	t.Parallel()
	p := NewPosture(catalog(t))
	if err := p.Deploy("D-nonexistent"); err == nil {
		t.Error("unknown defence deployed")
	}
}

func TestLayerStrings(t *testing.T) {
	t.Parallel()
	for _, l := range Layers() {
		if strings.HasPrefix(l.String(), "Layer(") {
			t.Errorf("layer %d unnamed", int(l))
		}
	}
	if len(Layers()) != 6 {
		t.Errorf("%d layers, want 6", len(Layers()))
	}
}
