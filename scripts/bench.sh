#!/bin/sh
# bench.sh — run the repo's benchmark suite and record the results as
# BENCH_<date>.json in the repo root, one JSON object per benchmark with
# ns/op, B/op, and allocs/op. Checked-in snapshots form the performance
# trajectory referenced by docs/PERFORMANCE.md.
#
# Usage: scripts/bench.sh [go-bench-regexp]
#   scripts/bench.sh                 # full suite (default -bench=.)
#   scripts/bench.sh 'UWB|Campaign'  # just the PHY / campaign benchmarks
#   scripts/bench.sh Secchan         # the per-suite protect/verify costs
#
# Environment:
#   BENCHTIME   passed to -benchtime (default 1s)
#   COUNT       passed to -count     (default 1)
set -eu

cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${BENCHTIME:-1s}"
count="${COUNT:-1}"
# Never clobber an existing snapshot: a second run on the same day gets
# a -2, -3, … suffix so the checked-in trajectory keeps every point.
out="BENCH_$(date +%F).json"
n=2
while [ -e "$out" ]; do
    out="BENCH_$(date +%F)-$n.json"
    n=$((n + 1))
done
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench: running -bench=$pattern -benchtime=$benchtime -count=$count" >&2
go test -run=NONE -bench="$pattern" -benchmem \
    -benchtime="$benchtime" -count="$count" . | tee "$raw" >&2

# Parse `go test -bench` lines into JSON. Format per line:
#   BenchmarkName-P   N   X ns/op [ Y MB/s ]  Z B/op   W allocs/op
awk -v date="$(date +%F)" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n  \"benchmarks\": [", date; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (aop != "") printf ", \"allocs_per_op\": %s", aop
    printf "}"
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

echo "bench: wrote $out" >&2
