#!/bin/sh
# fleet_smoke.sh — end-to-end smoke test of the fleet coordinator, run
# by CI and usable locally. Two real avsecd processes share one cache
# directory; the test proves the coordinator's two headline contracts
# on a 6-cell campaign (3 experiments x 2 seeds, default recheck):
#
#   1. Merge determinism: `avsec fleet` stdout is byte-identical to the
#      serial `avsec campaign` golden, for a single worker at chunk 1,
#      a different single worker at chunk 3, and both workers together.
#   2. Cross-worker cache reuse: after worker A populates the shared
#      cache, a sweep dispatched only to worker B is served entirely
#      from A's entries (B's hit counter covers every cell, B stores
#      nothing new) while producing the same bytes again.
#
# Usage: scripts/fleet_smoke.sh
# Exits non-zero on the first divergence. docs/FLEET.md documents the
# coordinator driven here.
set -eu

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$work/avsec" ./cmd/avsec
go build -o "$work/avsecd" ./cmd/avsecd

# The campaign grid: three experiments at two seeds, the CLI's default
# recheck fraction so both sides render the same header line.
IDS="fig3 exp-ids exp-ota"
CELLS=6

# start_daemon <name> — starts an avsecd on the shared cache dir and
# echoes its announced base URL.
start_daemon() {
    "$work/avsecd" -addr 127.0.0.1:0 -cache-dir "$work/cache" \
        > "$work/$1.addr" 2>"$work/$1.err" &
    pids="$pids $!"
    url=""
    for i in $(seq 1 50); do
        url="$(sed -n 's/^avsecd: listening on //p' "$work/$1.addr")"
        [ -n "$url" ] && break
        sleep 0.1
    done
    if [ -z "$url" ]; then
        echo "daemon $1 never announced its address" >&2
        cat "$work/$1.err" >&2
        exit 1
    fi
    for i in $(seq 1 50); do
        curl -sf "$url/api/v1/health" > /dev/null 2>&1 && break
        sleep 0.1
    done
    echo "$url"
}

# cache_stat <url> <field> — one counter from a worker's /api/v1/cache.
cache_stat() {
    curl -sf "$1/api/v1/cache" | sed -n "s/^ *\"$2\": \([0-9]*\).*/\1/p"
}

echo "== serial golden via avsec campaign"
"$work/avsec" campaign -seeds 2 -seed 42 -jobs 1 -recheck 0.25 $IDS \
    > "$work/serial.txt" 2>/dev/null

echo "== start two avsecd workers on one shared cache dir"
url_a="$(start_daemon worker-a)"
url_b="$(start_daemon worker-b)"
echo "   worker A $url_a, worker B $url_b"

echo "== fleet on worker A only (chunk 1) vs serial golden"
"$work/avsec" fleet -workers "$url_a" -chunk 1 \
    -seeds 2 -seed 42 -recheck 0.25 $IDS \
    > "$work/fleet_a.txt" 2>/dev/null
cmp "$work/serial.txt" "$work/fleet_a.txt"
stores_a="$(cache_stat "$url_a" stores)"
if [ "$stores_a" -lt "$CELLS" ]; then
    echo "worker A stored only $stores_a of $CELLS cells" >&2
    exit 1
fi
echo "   byte-identical; worker A stored $stores_a entries"

echo "== fleet on worker B only (chunk 3) must reuse A's cache entries"
"$work/avsec" fleet -workers "$url_b" -chunk 3 \
    -seeds 2 -seed 42 -recheck 0.25 $IDS \
    > "$work/fleet_b.txt" 2>/dev/null
cmp "$work/serial.txt" "$work/fleet_b.txt"
hits_b="$(cache_stat "$url_b" hits)"
stores_b="$(cache_stat "$url_b" stores)"
if [ "$hits_b" -lt "$CELLS" ]; then
    echo "worker B hit the shared cache only $hits_b times for $CELLS cells" >&2
    exit 1
fi
if [ "$stores_b" -ne 0 ]; then
    echo "worker B recomputed $stores_b cells that worker A had cached" >&2
    exit 1
fi
echo "   byte-identical; worker B: $hits_b hits, 0 stores (all cross-worker reuse)"

echo "== fleet across both workers (chunk 2) vs serial golden"
"$work/avsec" fleet -workers "$url_a,$url_b" -chunk 2 \
    -seeds 2 -seed 42 -recheck 0.25 $IDS \
    > "$work/fleet_ab.txt" 2>/dev/null
cmp "$work/serial.txt" "$work/fleet_ab.txt"
echo "   byte-identical"

echo "fleet smoke: OK"
