#!/bin/sh
# daemon_smoke.sh — end-to-end smoke test of the avsecd campaign
# daemon, run by CI and usable locally. It proves the daemon's two
# headline contracts on a small 3-cell campaign:
#
#   1. Sharding determinism: the daemon's text-format campaign output
#      at two different -jobs values is byte-identical to the output
#      `avsec campaign` prints serially for the same spec.
#   2. Cache transparency: a repeated identical sweep is served from
#      the content-addressed result cache (cache hit counters grow,
#      nothing new is stored) while producing the same bytes again.
#
# Usage: scripts/daemon_smoke.sh
# Exits non-zero on the first divergence. docs/DAEMON.md documents the
# API driven here.
set -eu

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$work/avsec" ./cmd/avsec
go build -o "$work/avsecd" ./cmd/avsecd

# The 3-cell campaign: three experiments at one seed, the CLI's
# default recheck fraction so both sides render the same header line.
IDS="fig3 exp-ids exp-ota"
IDS_JSON='["fig3", "exp-ids", "exp-ota"]'

echo "== serial golden via avsec campaign"
"$work/avsec" campaign -seeds 1 -seed 42 -jobs 1 -recheck 0.25 $IDS \
    > "$work/serial.txt" 2>/dev/null

echo "== start avsecd"
"$work/avsecd" -addr 127.0.0.1:0 -cache-dir "$work/cache" \
    > "$work/addr.txt" 2>"$work/daemon.err" &
daemon_pid=$!

# Wait for the address announcement, then for the health endpoint.
url=""
for i in $(seq 1 50); do
    url="$(sed -n 's/^avsecd: listening on //p' "$work/addr.txt")"
    [ -n "$url" ] && break
    sleep 0.1
done
if [ -z "$url" ]; then
    echo "daemon never announced its address" >&2
    cat "$work/daemon.err" >&2
    exit 1
fi
for i in $(seq 1 50); do
    curl -sf "$url/api/v1/health" > /dev/null 2>&1 && break
    sleep 0.1
done

post_campaign() {
    curl -sf -X POST "$url/api/v1/campaign" \
        -H 'Content-Type: application/json' -d "$1"
}

echo "== sharded campaign at two -jobs values vs serial golden"
post_campaign "{\"ids\": $IDS_JSON, \"seed_count\": 1, \"jobs\": 1, \"format\": \"text\"}" \
    > "$work/jobs1.txt"
cmp "$work/serial.txt" "$work/jobs1.txt"
post_campaign "{\"ids\": $IDS_JSON, \"seed_count\": 1, \"jobs\": 8, \"format\": \"text\"}" \
    > "$work/jobs8.txt"
cmp "$work/serial.txt" "$work/jobs8.txt"
echo "   byte-identical at jobs=1 and jobs=8"

echo "== repeated sweep must be a cache hit with identical bytes"
hits_before="$(curl -sf "$url/api/v1/cache" | sed -n 's/^ *"hits": \([0-9]*\).*/\1/p')"
post_campaign "{\"ids\": $IDS_JSON, \"seed_count\": 1, \"jobs\": 4, \"format\": \"text\"}" \
    > "$work/repeat.txt"
cmp "$work/serial.txt" "$work/repeat.txt"
hits_after="$(curl -sf "$url/api/v1/cache" | sed -n 's/^ *"hits": \([0-9]*\).*/\1/p')"
if [ "$hits_after" -lt "$((hits_before + 3))" ]; then
    echo "repeat sweep did not hit the cache (hits $hits_before -> $hits_after)" >&2
    exit 1
fi
echo "   cache hits $hits_before -> $hits_after, bytes identical"

echo "== NDJSON stream shape"
post_campaign "{\"ids\": $IDS_JSON, \"seed_count\": 1, \"jobs\": 4}" > "$work/stream.ndjson"
for type in campaign cell summary done; do
    grep -q "\"type\":\"$type\"" "$work/stream.ndjson" || {
        echo "stream is missing a \"$type\" event" >&2
        exit 1
    }
done
echo "   campaign/cell/summary/done events present"

echo "daemon smoke: OK"
