// Package autosec's root benchmark harness: one benchmark per paper
// artefact (every figure and table), as indexed in DESIGN.md. Each
// benchmark regenerates the corresponding experiment end-to-end, so
// `go test -bench=. -benchmem` both re-produces the paper's results and
// reports the cost of doing so. The per-iteration output is recorded in
// EXPERIMENTS.md; use `cmd/avsec run <id>` to see any report.
package autosec

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"autosec/internal/campaign"
	"autosec/internal/config"
	"autosec/internal/core"
	"autosec/internal/fleet"
	"autosec/internal/ivn"
	"autosec/internal/secchan"
	"autosec/internal/secchan/suites"
	"autosec/internal/sensor"
	"autosec/internal/server"
	"autosec/internal/sim"
	"autosec/internal/uwb"
	"autosec/internal/vcrypto"
	"autosec/internal/world"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := core.RunExperiment(id, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty report")
		}
	}
}

// --- paper artefacts ---

func BenchmarkFig1LayeredModel(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig2UWBRanging(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3ZonalIVN(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkTable1ProtocolMatrix(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkFig4ScenarioS1(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5ScenarioS2(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6ScenarioS3(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7SDVTrust(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8KillChain(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9MaaSSoS(b *testing.B)          { benchExperiment(b, "fig9") }

func BenchmarkCollisionAvoidance(b *testing.B) { benchExperiment(b, "exp-ca") }
func BenchmarkCollabPerception(b *testing.B)   { benchExperiment(b, "exp-collab") }
func BenchmarkIntrusionDetection(b *testing.B) { benchExperiment(b, "exp-ids") }
func BenchmarkAccessControl(b *testing.B)      { benchExperiment(b, "exp-access") }
func BenchmarkPTPSec(b *testing.B)             { benchExperiment(b, "exp-ptp") }
func BenchmarkV2XPseudonyms(b *testing.B)      { benchExperiment(b, "exp-v2x") }
func BenchmarkOTAPipeline(b *testing.B)        { benchExperiment(b, "exp-ota") }
func BenchmarkTARAWorksheet(b *testing.B)      { benchExperiment(b, "exp-tara") }
func BenchmarkFullVehicle(b *testing.B)        { benchExperiment(b, "exp-vehicle") }
func BenchmarkZCCompromise(b *testing.B)       { benchExperiment(b, "exp-zc") }
func BenchmarkStealthExfil(b *testing.B)       { benchExperiment(b, "exp-stealth") }

// --- ablations (DESIGN.md §4) ---

func BenchmarkAblationMACTruncation(b *testing.B)   { benchExperiment(b, "ablate-mac") }
func BenchmarkAblationFreshnessWindow(b *testing.B) { benchExperiment(b, "ablate-fv") }
func BenchmarkAblationSTSLength(b *testing.B)       { benchExperiment(b, "ablate-sts") }
func BenchmarkAblationCANALSegment(b *testing.B)    { benchExperiment(b, "ablate-canal") }
func BenchmarkAblationRedundancy(b *testing.B)      { benchExperiment(b, "ablate-k") }
func BenchmarkAblationIDSThreshold(b *testing.B)    { benchExperiment(b, "ablate-ids") }
func BenchmarkAblationScaling(b *testing.B)         { benchExperiment(b, "ablate-scale") }

// --- campaign runner (multi-seed grid through the worker pool) ---

// BenchmarkCampaignAll runs every experiment at 2 seeds through the
// campaign pool, once with a single worker (the old serial loop) and
// once at GOMAXPROCS, so the pool's speedup over serial execution is
// tracked in the perf trajectory. Each jobs level shares one
// jobs-sized worker pool between cell-level parallelism and
// intra-experiment replicate fan-out, exactly as `avsec all -jobs K`
// does: at jobs=1 everything is strictly serial, and at GOMAXPROCS
// the straggler cells absorb the idle workers' slots. Run with
// -benchmem to also see the aggregation overhead.
func BenchmarkCampaignAll(b *testing.B) {
	var ids []string
	for _, e := range core.Experiments() {
		ids = append(ids, e.ID)
	}
	seeds := campaign.Seeds(42, 2)
	for _, jobs := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pool := sim.NewWorkerPool(jobs)
				res, err := campaign.Run(campaign.Spec{
					IDs: ids, Seeds: seeds, Jobs: jobs, Pool: pool,
					Run: func(id string, seed int64) (string, error) {
						return core.RunExperimentWith(id, seed, pool)
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if out := res.RenderSummary(); len(out) == 0 {
					b.Fatal("empty campaign summary")
				}
			}
		})
	}
}

// --- fleet coordinator (internal/fleet, docs/FLEET.md) ---

// newStubFleetWorker serves the daemon wire protocol with a fixed
// per-cell service latency and no real compute: a stand-in for a
// remote avsecd on its own machine. On a many-core host the real
// daemon overlaps within itself; the stub instead makes each worker a
// serial perCell-latency device, so BenchmarkFleetCampaign isolates
// exactly the coordinator's ability to overlap *workers* — the
// scale-out dimension — independent of how many cores this build
// machine happens to have.
func newStubFleetWorker(b *testing.B, perCell time.Duration) *httptest.Server {
	b.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/health", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status": "ok", "code_version": "bench", "experiments": 2, "scenarios": 0, "cache": "disabled", "jobs": 1, "gomaxprocs": 1}`)
	})
	mux.HandleFunc("POST /api/v1/campaign", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			IDs   []string `json:"ids"`
			Seeds []int64  `json:"seeds"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		enc.Encode(map[string]any{"type": "campaign", "cells": len(req.IDs) * len(req.Seeds)})
		for _, id := range req.IDs {
			for _, seed := range req.Seeds {
				time.Sleep(perCell)
				enc.Encode(map[string]any{
					"type": "cell", "id": id, "seed": seed,
					"metrics": []sim.Metric{{Name: "bench_metric", Value: float64(seed)}},
					"report":  fmt.Sprintf("report %s seed %d", id, seed),
				})
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
		enc.Encode(map[string]any{"type": "done"})
	})
	ts := httptest.NewServer(mux)
	b.Cleanup(ts.Close)
	return ts
}

// BenchmarkFleetCampaign measures fleet scale-out: one 32-cell
// campaign sharded across 1, 2, and 4 stub workers, each a serial
// 2ms-per-cell device (see newStubFleetWorker for why the workers are
// stubs). cells/sec should scale ~linearly with the worker count; the
// gap from linear is pure coordinator overhead (handshake, chunk
// dispatch, NDJSON merge, grid-order collection).
func BenchmarkFleetCampaign(b *testing.B) {
	const perCell = 2 * time.Millisecond
	ids := []string{"bench-a", "bench-b"}
	seeds := campaign.Seeds(1, 16)
	cells := len(ids) * len(seeds)
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			var urls []string
			for i := 0; i < n; i++ {
				urls = append(urls, newStubFleetWorker(b, perCell).URL)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := fleet.Run(context.Background(), fleet.Config{
					Workers:   urls,
					IDs:       ids,
					Seeds:     seeds,
					ChunkSize: 2,
					InFlight:  1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Result.Cells) != cells {
					b.Fatalf("merged %d cells, want %d", len(rep.Result.Cells), cells)
				}
			}
			b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/sec")
		})
	}
}

// BenchmarkFleetCacheReplay measures the cross-worker cache-replay
// path end to end with two REAL in-process daemons sharing one cache
// directory: the first (untimed) run populates the cache, then every
// timed fleet run is served entirely from shared cache entries. This
// is the repeated-sweep economics of a fleet: ns/op here is the full
// coordinator + HTTP + cache-replay cost of a 16-cell campaign whose
// compute already happened somewhere else.
func BenchmarkFleetCacheReplay(b *testing.B) {
	cacheDir := filepath.Join(b.TempDir(), "cache")
	var urls []string
	for i := 0; i < 2; i++ {
		cfg := config.Default()
		cfg.ScenarioDir = filepath.Join(b.TempDir(), "no-scenarios")
		cfg.Cache.Dir = cacheDir
		s, err := server.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	cfg := fleet.Config{
		Workers:   urls,
		IDs:       []string{"fig3", "exp-ids"},
		Seeds:     campaign.Seeds(42, 8),
		ChunkSize: 4,
	}
	// Warm the shared cache outside the timer.
	if _, err := fleet.Run(context.Background(), cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Result.Cells) != 16 {
			b.Fatalf("merged %d cells, want 16", len(rep.Result.Cells))
		}
	}
	b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "cells/sec")
}

// --- substrate micro-benchmarks (hot paths) ---

// BenchmarkRunEncounter times one car-following encounter per fusion
// policy — the unit of work exp-ca fans out over the replicate pool,
// and the sensing/fusion stack's end-to-end hot path.
func BenchmarkRunEncounter(b *testing.B) {
	key := []byte("exp-ca-range-key")
	for _, policy := range []sensor.FusionPolicy{sensor.NaiveFusion, sensor.ConsensusFusion, sensor.VerifiedFusion} {
		b.Run(policy.String(), func(b *testing.B) {
			b.ReportAllocs()
			rng := sim.NewRNG(42)
			cfg := sensor.DefaultEncounter(policy, nil)
			for i := 0; i < b.N; i++ {
				res, err := sensor.RunEncounter(cfg, key, rng)
				if err != nil {
					b.Fatal(err)
				}
				if res.Collided {
					b.Fatal("benign encounter collided")
				}
			}
		})
	}
}

// BenchmarkFuse times one Sense+Fuse tick under consensus fusion: the
// innermost loop of every encounter (200 ticks each), dominated by
// detection clustering.
func BenchmarkFuse(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewRNG(42)
	w := world.New()
	if err := w.Add(&world.Actor{ID: "ego", Radius: 1, Transponder: true}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		a := &world.Actor{ID: fmt.Sprintf("car%d", i), Pos: world.Vec2{X: float64(10 + 15*i), Y: float64(i % 2)}, Radius: 1, Transponder: true}
		if err := w.Add(a); err != nil {
			b.Fatal(err)
		}
	}
	suite := sensor.NewSuite("ego", []byte("exp-ca-range-key"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dets := suite.Sense(w, nil, rng)
		obs := suite.Fuse(w, dets, sensor.ConsensusFusion, nil, rng)
		if len(obs) == 0 {
			b.Fatal("no fused obstacles")
		}
	}
}

func BenchmarkCMAC64B(b *testing.B) {
	b.ReportAllocs()
	key := []byte("0123456789abcdef")
	msg := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		if _, err := vcrypto.CMAC(key, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGCMSeal1KiB(b *testing.B) {
	b.ReportAllocs()
	key := vcrypto.DeriveKey([]byte("0123456789abcdef"), "bench", "gcm", 16)
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, err := vcrypto.GCMSeal(key, 1, uint32(i)+1, nil, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUWBCorrelate256(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewRNG(1)
	sts, err := uwb.NewSTS([]byte("0123456789abcdef"), 1, 256)
	if err != nil {
		b.Fatal(err)
	}
	ch := uwb.Channel{DistanceM: 60, NoiseStd: 0.2}
	rx := ch.Propagate(sts.Waveform(), ch.DelaySamples()+len(sts.Waveform())+512, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if corr := uwb.Correlate(rx, sts); len(corr) == 0 {
			b.Fatal("empty correlation")
		}
	}
}

func BenchmarkSecureToA(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewRNG(1)
	sess := uwb.Session{
		Key: []byte("0123456789abcdef"), Session: 1, Pulses: 256,
		Channel: uwb.Channel{DistanceM: 60, NoiseStd: 0.2},
		Secure:  true, Config: uwb.DefaultSecureConfig(),
	}
	for i := 0; i < b.N; i++ {
		if _, err := sess.Measure(nil, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIVNScenarioS1Throughput(b *testing.B) {
	b.ReportAllocs()
	cfg := ivn.Config{Seed: 1, Messages: 100, PeriodUs: 500, PayloadBytes: 4}
	for i := 0; i < b.N; i++ {
		res, err := ivn.RunS1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered != 100 {
			b.Fatalf("delivered %d", res.Delivered)
		}
	}
}

// BenchmarkSecchanProtectVerify measures one protect→verify round trip
// through every registered suite (plus the MACsec integrity-only
// variant) on a 64-byte payload — the per-message cost behind the
// Table I and IVN overhead comparisons.
func BenchmarkSecchanProtectVerify(b *testing.B) {
	key := []byte("0123456789abcdef")
	payload := make([]byte, 64)
	run := func(name string, mk func() (secchan.Suite, error)) {
		b.Run(name, func(b *testing.B) {
			s, err := mk()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				wire, err := s.Protect(payload)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Verify(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, e := range suites.Registry() {
		run(e.Name, func() (secchan.Suite, error) {
			return e.New(secchan.Params{Key: key, RNG: sim.NewRNG(1)})
		})
	}
	run("MACsec-integ", func() (secchan.Suite, error) {
		return suites.NewMACsecIntegrityOnly(secchan.Params{Key: key})
	})
}

// BenchmarkSecchanBatch measures the batched protect→verify round trip
// through every suite's native BatchSuite fast path at batch sizes 1,
// 16, and 256, with warmed wire and verdict buffers. The reported
// ns/frame is directly comparable to BenchmarkSecchanProtectVerify's
// ns/op: the gap is what batching buys (pipelined CMAC kernel calls for
// SECOC, allocation-free assembly and batched replay screens for the
// GCM suites). The emitted bytes are contractually identical to the
// single-frame path's.
func BenchmarkSecchanBatch(b *testing.B) {
	key := []byte("0123456789abcdef")
	mks := make(map[string]func() (secchan.Suite, error))
	var names []string
	for _, e := range suites.Registry() {
		e := e
		names = append(names, e.Name)
		mks[e.Name] = func() (secchan.Suite, error) {
			return e.New(secchan.Params{Key: key, RNG: sim.NewRNG(1)})
		}
	}
	names = append(names, "MACsec-integ")
	mks["MACsec-integ"] = func() (secchan.Suite, error) {
		return suites.NewMACsecIntegrityOnly(secchan.Params{Key: key})
	}

	for _, name := range names {
		for _, n := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				s, err := mks[name]()
				if err != nil {
					b.Fatal(err)
				}
				payloads := make([][]byte, n)
				for i := range payloads {
					payloads[i] = make([]byte, 64)
				}
				var wires [][]byte
				var verdicts []secchan.Verdict
				b.ReportAllocs()
				b.SetBytes(int64(n * 64))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					wires, err = secchan.ProtectBatch(s, payloads, wires)
					if err != nil {
						b.Fatal(err)
					}
					verdicts = secchan.VerifyBatch(s, wires, verdicts)
					for j := range verdicts {
						if verdicts[j].Err != nil {
							b.Fatal(verdicts[j].Err)
						}
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/frame")
			})
		}
	}
}
